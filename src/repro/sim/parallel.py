"""repro.sim.parallel — one simulation sharded across worker processes.

Conservative parallel discrete-event simulation (null-message / LBTS
style) for the packet engine: the topology is partitioned into *shards*,
each worker process executes only the nodes its shard owns, and the
parent coordinates barrier-synchronized *windows* of simulated time whose
length is the static **lookahead** — the minimum latency any packet needs
to cross a cut link.  Within a window no shard can affect another, so all
shards run concurrently; at the barrier, packets that crossed the cut are
exchanged and the next window begins.

The headline property is **bit-identity with serial execution**: a
sharded run pops the same events in the same order and produces the same
golden-trace digests, audit verdicts, and metric rows as
``Simulator.run`` in one process.  Three mechanisms carry that:

*Replicated construction.*  Every worker builds the *full* topology and
all flows with the same seed, so node ids, flow ids, port numbers, and
ECMP tables are identical replicas.  Ownership is then subtractive: a
non-owned node's ``receive`` is stubbed out and a non-owned flow's start
event is cancelled, which silences exactly the event chains the owning
shard runs for real.  (Event chains in this engine are rooted either in a
flow's start event — executed by the shard owning ``flow.src`` — or in a
packet reception at a node, so node ownership covers everything else.)

*Order-preserving keys.*  The serial engine breaks same-picosecond ties
with one global sequence counter, which two processes cannot share.
:class:`ShardSimulator` instead keys entries by
``(time, (sched_time, tier, ...))`` where ``sched_time`` is the clock
value at the instant the event was scheduled: for local events that order
is provably identical to the serial sequence order (the clock is
non-decreasing across schedule calls), and a cross-shard arrival carries
its sender-side ``sched_time`` so it sorts against local events exactly
where the serial wire-delivery event — scheduled at that same instant —
would have sorted.  Remaining exact ties (same arrival time *and* same
scheduling picosecond) are resolved by a fixed tier convention, validated
empirically by the golden bit-identity tests.

*Lookahead from the wire.*  A packet transmitted at ``T`` over a cut link
arrives at ``T + tx_time + prop_delay > T + prop_delay``, so the minimum
cut-link propagation delay is a sound window length that survives chaos
plans retuning rates mid-run.  Messages generated inside a window always
arrive strictly after it, hence injecting them at the barrier is never
late.

Known v1 limitations (checked or warned, never silent):

* PFC pause signalling schedules directly onto a *neighbor's* port with
  no interposable wire crossing; sharding refuses topologies where a PFC
  node sits on a cut.
* ``Flow.rehash_path`` mutates the replica hash only in the shard that
  runs it, so transit shards keep routing by the stale hash.  Runs where
  any rehash fired are flagged in :attr:`ShardedRun.warnings`.
* Named ``sim.rng`` streams are per-replica; a stream consumed in two or
  more shards draws in a different order than serial and is flagged in
  :attr:`ShardedRun.warnings`.  Per-entity streams (``rng_for``) and the
  per-burst chaos streams are immune by construction.
"""

from __future__ import annotations

import hashlib
import multiprocessing
import os
import pickle
import random
import threading
import time
import traceback
import zlib
from dataclasses import dataclass, field
from itertools import count
from typing import Any, Callable, Dict, List, Optional, Sequence, Tuple

from repro.net.packet import Packet, PacketKind
from repro.resilience import selfchaos
from repro.sim.engine import _RECYCLE, Event, Simulator, _heappush, _new_raw
from repro.sim.units import tx_time_ps


def _shard_heartbeat_s() -> float:
    """Worker heartbeat period (``REPRO_SHARD_HEARTBEAT`` seconds)."""
    try:
        return max(0.05, float(os.environ.get("REPRO_SHARD_HEARTBEAT", "1")))
    except ValueError:
        return 1.0


def _shard_deadline_s() -> float:
    """Hung-shard watchdog deadline (``REPRO_SHARD_DEADLINE`` seconds).

    Measured since the shard's last message (heartbeats included), so a
    window may compute for minutes without tripping it — only a worker
    whose heartbeat thread has gone silent is declared hung.
    """
    try:
        return max(0.5, float(os.environ.get("REPRO_SHARD_DEADLINE", "60")))
    except ValueError:
        return 60.0

__all__ = [
    "ShardContext",
    "ShardSimulator",
    "ShardedRun",
    "cut_lookahead_ps",
    "partition_nodes",
    "run_sharded",
]


class ShardSimulator(Simulator):
    """A :class:`Simulator` whose tie-break keys survive sharding.

    Heap entries become ``(time, (sched_now, 0, seq), event)`` — the extra
    ``sched_now`` (the clock when the event was scheduled) is what lets a
    cross-shard arrival, keyed ``(time, (sender_sched_now, 1, shard,
    seq))`` via :meth:`inject`, take the exact queue position the serial
    run's locally-scheduled delivery would have had.  For purely local
    events the order is unchanged from serial: the clock is non-decreasing
    over schedule calls, so ``(sched_now, 0, seq)`` sorts identically to
    ``seq`` alone.  The run loops, compaction, and ``peek_time`` only read
    ``entry[0]`` and ``entry[2]``, so the widened middle element is
    invisible to them; key tuples are always unique, so entry comparisons
    never fall through to the (incomparable) events.
    """

    def __init__(self, seed: int = 0, sched: Optional[str] = None):
        #: The worker's :class:`ShardContext`; set before the builder runs
        #: so ``Flow.__init__`` can self-register replicas.
        self.shard: Optional["ShardContext"] = None
        super().__init__(seed=seed, sched=sched)

    # Each override mirrors its base verbatim except for the pushed key —
    # the engine inlines Event construction for speed, and so do we.

    def schedule(self, delay: int, fn: Callable[..., Any], *args: Any) -> Event:
        if delay < 0:
            raise ValueError(f"cannot schedule into the past (delay={delay})")
        time = self.now + delay
        free = self._freelist
        event = free.pop() if free else _new_raw(Event)
        event.time = time
        event.fn = fn
        event.args = args
        event.state = 0
        event.sim = self
        _heappush(self._heap, (time, (self.now, 0, next(self._seq)), event))
        return event

    def schedule_at(self, time: int, fn: Callable[..., Any], *args: Any) -> Event:
        if time < self.now:
            raise ValueError(
                f"cannot schedule into the past (t={time} < now={self.now})")
        free = self._freelist
        event = free.pop() if free else _new_raw(Event)
        event.time = time
        event.fn = fn
        event.args = args
        event.state = 0
        event.sim = self
        _heappush(self._heap, (time, (self.now, 0, next(self._seq)), event))
        return event

    def schedule_unref(self, delay: int, fn: Callable[..., Any], *args: Any) -> None:
        if delay < 0:
            raise ValueError(f"cannot schedule into the past (delay={delay})")
        time = self.now + delay
        free = self._freelist
        event = free.pop() if free else _new_raw(Event)
        event.time = time
        event.fn = fn
        event.args = args
        event.state = _RECYCLE
        event.sim = self
        _heappush(self._heap, (time, (self.now, 0, next(self._seq)), event))

    def _schedule_cal(self, delay: int, fn: Callable[..., Any],
                      *args: Any) -> Event:
        if delay < 0:
            raise ValueError(f"cannot schedule into the past (delay={delay})")
        time = self.now + delay
        free = self._freelist
        event = free.pop() if free else _new_raw(Event)
        event.time = time
        event.fn = fn
        event.args = args
        event.state = 0
        event.sim = self
        self._cal.push((time, (self.now, 0, next(self._seq)), event))
        return event

    def _schedule_at_cal(self, time: int, fn: Callable[..., Any],
                         *args: Any) -> Event:
        if time < self.now:
            raise ValueError(
                f"cannot schedule into the past (t={time} < now={self.now})")
        free = self._freelist
        event = free.pop() if free else _new_raw(Event)
        event.time = time
        event.fn = fn
        event.args = args
        event.state = 0
        event.sim = self
        self._cal.push((time, (self.now, 0, next(self._seq)), event))
        return event

    def _schedule_unref_cal(self, delay: int, fn: Callable[..., Any],
                            *args: Any) -> None:
        if delay < 0:
            raise ValueError(f"cannot schedule into the past (delay={delay})")
        time = self.now + delay
        free = self._freelist
        event = free.pop() if free else _new_raw(Event)
        event.time = time
        event.fn = fn
        event.args = args
        event.state = _RECYCLE
        event.sim = self
        self._cal.push((time, (self.now, 0, next(self._seq)), event))

    def inject(self, time: int, subkey: tuple, fn: Callable[..., Any],
               *args: Any) -> None:
        """Enqueue a cross-shard arrival under an externally supplied key.

        ``subkey`` is ``(sender_sched_time, 1, src_shard, src_seq)``: the
        tier ``1`` ranks it after local events scheduled at the same
        picosecond (serial would have interleaved by a shared counter; the
        convention must merely be *fixed*), and ``(src_shard, src_seq)``
        makes same-instant arrivals from different senders deterministic.
        """
        if time < self.now:
            raise ValueError(
                f"cannot inject into the past (t={time} < now={self.now})")
        event = _new_raw(Event)
        event.time = time
        event.fn = fn
        event.args = args
        event.state = 0
        event.sim = self
        entry = (time, subkey, event)
        if self._cal is None:
            _heappush(self._heap, entry)
        else:
            self._cal.push(entry)


# ---------------------------------------------------------------------------
# Topology partitioning
# ---------------------------------------------------------------------------

def partition_nodes(net, n_shards: int, topo=None) -> Dict[int, int]:
    """Deterministically map every node id to a shard in ``[0, n_shards)``.

    Fat-tree / Clos topologies (anything exposing ``cores`` and ``tors``)
    get the structural split: each pod (a connected component of the
    non-core subgraph) is a unit, pods are dealt round-robin over shards
    ``0..n_shards-2``, and the core layer forms the last shard — with
    ``n_shards == k + 1`` that is one shard per pod plus a core shard.
    Everything else falls back to recursive min-cut bisection (BFS seed
    split plus Kernighan–Lin-style greedy refinement), which finds e.g.
    the dumbbell's single-link cut.

    Pure function of the (replicated) topology, so every worker computes
    the identical map; the effective shard count may come out lower than
    requested on unsplittable graphs.
    """
    if n_shards < 1:
        raise ValueError(f"need at least one shard, got {n_shards}")
    n_shards = min(n_shards, len(net.nodes))
    if n_shards <= 1:
        return {nid: 0 for nid in net.nodes}
    cores = getattr(topo, "cores", None)
    if cores and getattr(topo, "tors", None):
        return _pod_partition(net, cores, n_shards)
    return _mincut_partition(net, n_shards)


def _pod_partition(net, cores, n_shards: int) -> Dict[int, int]:
    core_ids = {c.id for c in cores}
    owner = {cid: n_shards - 1 for cid in core_ids}
    seen = set(core_ids)
    pods: List[List[int]] = []
    for root in sorted(net.nodes):
        if root in seen:
            continue
        pod = [root]
        seen.add(root)
        stack = [root]
        while stack:
            u = stack.pop()
            for v in net.nodes[u].ports:
                if v not in seen and v not in core_ids:
                    seen.add(v)
                    pod.append(v)
                    stack.append(v)
        pods.append(pod)
    groups = max(1, n_shards - 1)
    for i, pod in enumerate(pods):
        for nid in pod:
            owner[nid] = i % groups
    return owner


def _mincut_partition(net, n_shards: int) -> Dict[int, int]:
    adj = {nid: set(net.nodes[nid].ports) for nid in net.nodes}
    parts: List[List[int]] = [sorted(adj)]
    while len(parts) < n_shards:
        parts.sort(key=lambda p: (-len(p), p[0]))
        big = parts[0]
        if len(big) < 2:
            break
        parts.pop(0)
        a, b = _bisect(adj, big)
        parts.append(a)
        parts.append(b)
    parts.sort(key=lambda p: p[0])
    return {nid: s for s, part in enumerate(parts) for nid in part}


def _bisect(adj, nodes: List[int]) -> Tuple[List[int], List[int]]:
    """Split ``nodes`` into two balanced halves, greedily minimizing cut."""
    present = set(nodes)
    order: List[int] = []
    seen = set()
    for root in sorted(nodes):
        if root in seen:
            continue
        seen.add(root)
        queue = [root]
        qi = 0
        while qi < len(queue):
            u = queue[qi]
            qi += 1
            order.append(u)
            for v in sorted(adj[u]):
                if v in present and v not in seen:
                    seen.add(v)
                    queue.append(v)
    half = len(order) // 2
    side = {nid: (0 if i < half else 1) for i, nid in enumerate(order)}
    sizes = [half, len(order) - half]
    min_side = max(1, half - max(1, len(order) // 4))

    def gain(nid: int) -> int:
        s = side[nid]
        g = 0
        for v in adj[nid]:
            if v in present:
                g += 1 if side[v] != s else -1
        return g

    # Greedy single-move refinement: every accepted move strictly drops
    # the cut size, so termination is immediate; the bound is a backstop.
    for _ in range(2 * len(order)):
        best = None
        for nid in order:
            if sizes[side[nid]] - 1 < min_side:
                continue
            g = gain(nid)
            if g > 0 and (best is None or g > best[0]):
                best = (g, nid)
        if best is None:
            break
        nid = best[1]
        s = side[nid]
        side[nid] = 1 - s
        sizes[s] -= 1
        sizes[1 - s] += 1
    return ([n for n in sorted(order) if side[n] == 0],
            [n for n in sorted(order) if side[n] == 1])


def cut_lookahead_ps(net, owner: Dict[int, int]) -> Optional[int]:
    """Minimum propagation delay over cut links; ``None`` if nothing cut.

    Deliberately excludes serialization time: chaos plans may retune
    rates mid-run, but nothing in the fault plane shortens a wire.
    """
    lookahead = None
    for port in net.ports:
        if owner[port.node.id] != owner[port.peer.id]:
            if lookahead is None or port.prop_delay_ps < lookahead:
                lookahead = port.prop_delay_ps
    if lookahead is not None:
        lookahead = max(1, lookahead)
    return lookahead


# ---------------------------------------------------------------------------
# Per-worker shard context
# ---------------------------------------------------------------------------

class ShardContext:
    """One worker's view: ownership map, flow replicas, outgoing messages."""

    def __init__(self, sim: ShardSimulator, shard_id: int):
        self.sim = sim
        self.id = shard_id
        self.owner: Dict[int, int] = {}
        #: fid -> local flow replica, filled by ``Flow.__init__``'s hook.
        self.flows: Dict[int, object] = {}
        self.net = None
        self.built = None
        #: Ingress cut ports by (src_node_id, dst_node_id) link key.
        self.cut_in: Dict[Tuple[int, int], object] = {}
        self.outbox: List[tuple] = []
        self._export_seq = count(1)
        sim.shard = self

    def register_flow(self, flow) -> None:
        self.flows[flow.fid] = flow

    def owns(self, node_id: int) -> bool:
        return self.owner.get(node_id) == self.id


def _noop_receive(pkt, from_port) -> None:
    """Instance-attribute stub for non-owned nodes: the real reception
    happens in the owning shard; the locally scheduled copy lands here."""
    return None


def _apply_ownership(ctx: ShardContext) -> None:
    me = ctx.id
    owner = ctx.owner
    for nid, node in ctx.net.nodes.items():
        if owner[nid] != me:
            node.receive = _noop_receive
    for flow in ctx.flows.values():
        if owner[flow.src.id] != me:
            flow._start_evt.cancel()
    for port in ctx.net.ports:
        src_s = owner[port.node.id]
        dst_s = owner[port.peer.id]
        if src_s == dst_s:
            continue
        if getattr(port, "pfc", None) is not None:
            raise ValueError(
                f"port {port.name} has PFC installed and sits on a shard "
                f"cut: PFC pause frames are scheduled directly onto the "
                f"neighbor's port and cannot cross shards — run this "
                f"topology serially or partition around the PFC domain")
        if src_s == me:
            _install_ship_hook(ctx, port, dst_s)
        if dst_s == me:
            ctx.cut_in[(port.node.id, port.peer.id)] = port


def _install_ship_hook(ctx: ShardContext, port, dst_shard: int) -> None:
    """Chain onto a cut port's transmit hook and export each packet.

    The arrival time reproduces the port's own delivery schedule
    (``now + tx_time + prop_delay``) exactly; the locally scheduled
    delivery still fires, harmlessly, into the peer's receive stub.
    """
    prev = port.on_transmit
    sim = ctx.sim
    link = (port.node.id, port.peer.id)
    export_seq = ctx._export_seq

    def ship(pkt: Packet) -> None:
        if prev is not None:
            prev(pkt)
        now = sim.now
        arr = now + tx_time_ps(pkt.wire_bytes, port.rate_bps) + port.prop_delay_ps
        # Resolve ``ctx.outbox`` at call time: the worker loop swaps in a
        # fresh list after draining each window's exports.
        ctx.outbox.append((dst_shard, link, arr, now, ctx.id,
                           next(export_seq), _encode_packet(pkt)))

    port.on_transmit = ship


# ---------------------------------------------------------------------------
# Packet codec (explicit fields: packets hold a live flow reference, which
# must be re-bound to the receiving shard's replica, and uids are
# process-local and unobserved by traces)
# ---------------------------------------------------------------------------

def _encode_packet(pkt: Packet) -> tuple:
    return (int(pkt.kind), pkt.src, pkt.dst,
            None if pkt.flow is None else pkt.flow.fid,
            pkt.wire_bytes, pkt.payload_bytes, pkt.seq, pkt.ack,
            pkt.credit_seq, pkt.ecn_capable, pkt.ecn_marked, pkt.ecn_echo,
            pkt.rcp_rate, pkt.sent_ts, pkt.low_priority,
            None if pkt.hops is None else list(pkt.hops))


def _decode_packet(ctx: ShardContext, data: tuple) -> Packet:
    (kind, src, dst, fid, wire, payload, seq, ack, credit_seq, ecn_capable,
     ecn_marked, ecn_echo, rcp_rate, sent_ts, low_priority, hops) = data
    pkt = Packet(PacketKind(kind), src, dst,
                 flow=None if fid is None else ctx.flows.get(fid),
                 wire_bytes=wire, payload_bytes=payload, seq=seq, ack=ack,
                 credit_seq=credit_seq, ecn_capable=ecn_capable,
                 sent_ts=sent_ts)
    pkt.ecn_marked = ecn_marked
    pkt.ecn_echo = ecn_echo
    pkt.rcp_rate = rcp_rate
    pkt.low_priority = low_priority
    pkt.hops = hops
    return pkt


# ---------------------------------------------------------------------------
# Worker process
# ---------------------------------------------------------------------------

def _find_net(built):
    from repro.topology.network import Network

    if isinstance(built, Network):
        return built, None
    net = getattr(built, "net", None)
    if net is None and isinstance(built, dict):
        net = built.get("net")
    if net is None:
        raise TypeError(
            "builder must return a Network, an object with a .net "
            f"attribute, or a dict with a 'net' key; got {type(built)!r}")
    hint = getattr(built, "topo", None)
    return net, (hint if hint is not None else built)


def _digest(obj) -> str:
    return hashlib.blake2b(pickle.dumps(obj), digest_size=8).hexdigest()


def _rng_report(sim: Simulator) -> Tuple[Dict[str, str], Dict[str, bool]]:
    """Per named stream: a state digest, and whether it was ever drawn from."""
    digests, consumed = {}, {}
    for name, stream in sim._rngs.items():
        d = _digest(stream.getstate())
        digests[name] = d
        fresh = random.Random((sim.seed << 32) ^ zlib.crc32(name.encode()))
        consumed[name] = d != _digest(fresh.getstate())
    return digests, consumed


def _shard_worker(conn, builder, kwargs, shard_id, n_shards, seed, sched,
                  audit_on, metrics_on, trace_on, collect, probe) -> None:
    # One lock serialises every message on the pipe: the heartbeat thread
    # must never interleave bytes into the middle of a protocol reply.
    send_lock = threading.Lock()
    stop_hb = threading.Event()

    def send(msg) -> None:
        with send_lock:
            conn.send(msg)

    def heartbeat_loop() -> None:
        interval = _shard_heartbeat_s()
        while not stop_hb.wait(interval):
            try:
                send(("hb",))
            except (OSError, ValueError):
                return

    hb = threading.Thread(target=heartbeat_loop, daemon=True)
    hb.start()
    try:
        _shard_worker_loop(send, conn, builder, kwargs, shard_id, n_shards,
                           seed, sched, audit_on, metrics_on, trace_on,
                           collect, probe, stop_hb)
    except BaseException:
        try:
            send(("error", traceback.format_exc()))
        except OSError:
            pass
    finally:
        stop_hb.set()
        conn.close()


def _shard_worker_loop(send, conn, builder, kwargs, shard_id, n_shards, seed,
                       sched, audit_on, metrics_on, trace_on, collect, probe,
                       stop_hb) -> None:
    from repro import audit as audit_mod
    from repro import obs as obs_mod

    # The worker ships its spans back on the collect reply; it must never
    # lazily activate an ambient tracer of its own (which would race the
    # parent for the REPRO_TRACE output file at exit).
    os.environ.pop("REPRO_TRACE", None)
    tracer = None
    if trace_on:
        from repro.obs import trace as trace_mod
        # Explicit, non-ambient: the per-window ``sim.run`` calls below
        # would otherwise each emit an ``engine.run`` span; the "window"
        # spans carry that information with their counters instead.
        tracer = trace_mod.Tracer(max_records=trace_mod.WORKER_MAX_RECORDS)

    audit_marker = audit_mod.begin_capture() if audit_on else None
    obs_marker = obs_mod.begin_capture() if metrics_on else None

    build_t0 = tracer.now_us() if tracer is not None else 0.0
    sim = ShardSimulator(seed=seed, sched=sched)
    ctx = ShardContext(sim, shard_id)
    built = builder(sim, **(kwargs or {}))
    ctx.built = built
    ctx.net, topo_hint = _find_net(built)
    ctx.owner = partition_nodes(ctx.net, n_shards, topo=topo_hint)
    n_effective = max(ctx.owner.values()) + 1
    auditor = getattr(sim, "auditor", None)
    if auditor is not None and n_effective > 1:
        auditor.defer_flow_checks = True
    lookahead = cut_lookahead_ps(ctx.net, ctx.owner)
    _apply_ownership(ctx)
    if tracer is not None:
        tracer.span("shard", "builder.replay", track="lane",
                    t0=build_t0, t1=tracer.now_us(),
                    args={"shard": shard_id, "nodes": len(ctx.owner),
                          "lookahead_ps": lookahead})
    send(("ready", lookahead, n_effective,
          _digest(sorted(ctx.owner.items())), sim.peek_time()))
    idle_anchor = tracer.now_us() if tracer is not None else 0.0
    window_no = 0

    while True:
        msg = conn.recv()
        cmd = msg[0]
        if tracer is not None:
            busy_t0 = tracer.now_us()
            idle_us = busy_t0 - idle_anchor
        if cmd == "run":
            _, window_end, incoming = msg
            window_no += 1
            if selfchaos.armed():
                if selfchaos.fire("shard:kill", window=window_no):
                    selfchaos.kill_self()
                if selfchaos.fire("shard:hang", window=window_no):
                    # A hang is silence, not death: stop heartbeating and
                    # sleep until the coordinator's watchdog reaps us.
                    stop_hb.set()
                    while True:
                        time.sleep(60)
            for (link, arr, sched_t, src_shard, src_seq, data) in incoming:
                port = ctx.cut_in[link]
                pkt = _decode_packet(ctx, data)
                sim.inject(arr, (sched_t, 1, src_shard, src_seq),
                           port.peer.receive, pkt, port)
            if tracer is not None:
                events_before = sim.events_processed
            sim.run(until=window_end)
            out = ctx.outbox
            ctx.outbox = []
            if tracer is not None:
                tracer.span(
                    "shard", "window", track="lane",
                    t0=busy_t0, t1=tracer.now_us(),
                    args={"shard": shard_id, "end_ps": window_end,
                          "events": sim.events_processed - events_before,
                          "shipped": len(out), "received": len(incoming),
                          "idle_us": round(idle_us, 3)})
            send(("sync", sim.peek_time(), out))
        elif cmd == "probe":
            value = probe(ctx, msg[1]) if probe is not None else None
            if tracer is not None:
                tracer.span("shard", "probe", track="lane",
                            t0=busy_t0, t1=tracer.now_us(),
                            args={"shard": shard_id, "t_ps": msg[1],
                                  "idle_us": round(idle_us, 3)})
            send(("probe", msg[1], value))
        elif cmd == "collect":
            stop_hb.set()
            send(("result", _collect_result(
                ctx, collect, audit_marker, obs_marker, tracer)))
            return
        else:  # pragma: no cover - protocol guard
            raise RuntimeError(f"unknown coordinator command {cmd!r}")
        if tracer is not None:
            idle_anchor = tracer.now_us()


def _collect_result(ctx: ShardContext, collect, audit_marker,
                    obs_marker, tracer=None) -> dict:
    from repro import audit as audit_mod
    from repro import obs as obs_mod

    sim = ctx.sim
    digests, consumed = _rng_report(sim)
    result = {
        "shard": ctx.id,
        "now": sim.now,
        "events": sim.events_processed,
        "pending": sim.pending(),
        "rehashes": sum(f.path_rehashes for f in ctx.flows.values()),
        "recoveries": sum(getattr(f, "path_recoveries", 0)
                          for f in ctx.flows.values()),
        "rng": digests,
        "rng_consumed": consumed,
        "collect": None if collect is None else collect(ctx),
    }
    if audit_marker is not None:
        auditor = getattr(sim, "auditor", None)
        accounts = [] if auditor is None else auditor.flow_accounts()
        for account in accounts:
            flow = ctx.flows.get(account["fid"])
            account["dst_owned"] = (flow is not None
                                    and ctx.owns(flow.dst.id))
        result["flow_accounts"] = accounts
        result["audit"] = audit_mod.end_capture(audit_marker)
        chaos = getattr(sim, "chaos", None)
        result["chaos"] = None if chaos is None else {
            "topology_changed": chaos.topology_changed,
            "affected_links": sorted(chaos.affected_links),
        }
    if obs_marker is not None:
        summary, _ = obs_mod.end_capture(obs_marker)
        result["metrics"] = summary
    if tracer is not None:
        result["trace"] = {"records": tracer.records, "epoch": tracer.epoch,
                           "dropped": tracer.dropped}
    return result


# ---------------------------------------------------------------------------
# Coordinator
# ---------------------------------------------------------------------------

@dataclass
class ShardedRun:
    """The merged outcome of one sharded execution."""

    n_shards: int
    n_effective: int
    lookahead_ps: Optional[int]
    windows: int
    events: int
    #: Raw per-shard result dicts, in shard order.
    shards: List[dict]
    #: ``collect(ctx)`` return values, in shard order.
    collected: List[Any]
    #: checkpoint time -> per-shard ``probe(ctx, t)`` values.
    probes: Dict[int, List[Any]]
    audit: Optional[dict] = None
    metrics: Optional[dict] = None
    warnings: List[str] = field(default_factory=list)
    #: One record per shard failover the supervisor performed:
    #: ``{"shard", "reason", "replayed_windows"}``.  Empty on a clean run.
    failovers: List[dict] = field(default_factory=list)

    @property
    def drained(self) -> bool:
        return all(r["pending"] == 0 for r in self.shards)


class _ShardFailure(Exception):
    """Internal: shard ``shard_id`` died or went silent (recoverable)."""

    def __init__(self, shard_id: int, reason: str):
        super().__init__(f"shard {shard_id}: {reason}")
        self.shard_id = shard_id
        self.reason = reason


class _ShardSupervisor:
    """Spawns, watches, reaps, and — on death — resurrects shard workers.

    Recovery protocol: window barriers are natural checkpoints, so when a
    worker dies (SIGKILL, OOM) or its heartbeat goes silent past the
    deadline, the supervisor terminates and reaps it, spawns a fresh
    worker (which replays the deterministic builder), then replays the
    recorded ``run`` command history — discarding the replayed outboxes,
    whose packets were already routed the first time — to fast-forward
    the replica to the last completed barrier.  Replicated construction
    plus deterministic windows make the resurrected shard's state
    bit-identical to the dead one's, which is what keeps golden digests
    equal to a failure-free run.

    A deterministic worker *error* (an exception reply) is not failed
    over — it would recur identically — and raises after every sibling is
    reaped, so no orphan processes outlive the run.
    """

    def __init__(self, spawn: Callable, shards: int,
                 deadline_s: Optional[float], max_respawns: int,
                 tracer=None):
        self._spawn = spawn
        self.shards = shards
        self.deadline_s = _shard_deadline_s() if deadline_s is None \
            else deadline_s
        self.max_respawns = max_respawns
        self.tracer = tracer
        self.conns: List[Any] = [None] * shards
        self.procs: List[Any] = [None] * shards
        self.last_seen = [0.0] * shards
        self.readies: List[Optional[tuple]] = [None] * shards
        self.owner_digest: Optional[str] = None
        #: Recorded replayable commands (the ``run`` history) per shard.
        self.history: List[List[tuple]] = [[] for _ in range(shards)]
        #: The posted-but-unanswered command per shard (replay excludes it).
        self.pending_cmd: List[Optional[tuple]] = [None] * shards
        self.respawns = 0
        self.failovers: List[dict] = []

    # -- lifecycle ----------------------------------------------------------

    def start(self, i: int) -> None:
        self.conns[i], self.procs[i] = self._spawn(i)
        self.last_seen[i] = time.monotonic()

    def start_all(self) -> None:
        for i in range(self.shards):
            self.start(i)

    def _reap(self, i: int) -> None:
        conn, proc = self.conns[i], self.procs[i]
        if conn is not None:
            try:
                conn.close()
            except OSError:
                pass
            self.conns[i] = None
        if proc is not None:
            if proc.is_alive():
                proc.terminate()
                proc.join(timeout=5)
            if proc.is_alive():
                proc.kill()
            proc.join()
            self.procs[i] = None

    def reap_all(self, grace_s: float = 30.0) -> None:
        """Terminate and join every worker — the no-orphans guarantee.

        On the success path workers have already exited (``collect``
        returns); the join is instant.  On any error path this tears the
        whole cohort down hard: close pipes (EOF wakes blocked workers),
        join with a grace period, terminate, and finally SIGKILL."""
        for conn in self.conns:
            if conn is not None:
                try:
                    conn.close()
                except OSError:
                    pass
        self.conns = [None] * self.shards
        procs = [p for p in self.procs if p is not None]
        deadline = time.monotonic() + grace_s
        for proc in procs:
            proc.join(timeout=max(0.0, deadline - time.monotonic()))
            if proc.is_alive():
                proc.terminate()
                proc.join(timeout=5)
            if proc.is_alive():
                proc.kill()
            proc.join()
        self.procs = [None] * self.shards

    # -- messaging ----------------------------------------------------------

    def _send_raw(self, i: int, msg: tuple) -> None:
        try:
            self.conns[i].send(msg)
        except (OSError, ValueError, BrokenPipeError):
            raise _ShardFailure(
                i, f"pipe closed (exitcode "
                   f"{getattr(self.procs[i], 'exitcode', None)})")

    def _recv_raw(self, i: int) -> tuple:
        """One protocol message from shard ``i`` (heartbeats skipped),
        watching for death and heartbeat silence while waiting."""
        while True:
            conn, proc = self.conns[i], self.procs[i]
            try:
                if conn.poll(0.2):
                    msg = conn.recv()
                    self.last_seen[i] = time.monotonic()
                    if msg[0] == "hb":
                        continue
                    if msg[0] == "error":
                        # Deterministic failure: a respawn would re-raise
                        # the same exception.  Reap everything and die.
                        self.reap_all(grace_s=5.0)
                        raise RuntimeError(
                            f"shard {i} worker failed:\n{msg[1]}")
                    return msg
            except (EOFError, OSError):
                raise _ShardFailure(
                    i, f"worker exited unexpectedly "
                       f"(exitcode {proc.exitcode})")
            if not proc.is_alive() and not conn.poll(0):
                raise _ShardFailure(
                    i, f"worker died (exitcode {proc.exitcode})")
            if time.monotonic() - self.last_seen[i] > self.deadline_s:
                raise _ShardFailure(
                    i, f"no heartbeat for {self.deadline_s:g}s "
                       f"(hung worker)")

    def post(self, i: int, msg: tuple, record: bool = False) -> None:
        """Send a command; a send failure triggers failover (which ends
        with the command re-posted)."""
        if record:
            self.history[i].append(msg)
        self.pending_cmd[i] = msg
        try:
            self._send_raw(i, msg)
        except _ShardFailure as fail:
            self.failover(i, fail.reason)

    def reply(self, i: int) -> tuple:
        """The pending command's reply, failing over as needed."""
        while True:
            try:
                msg = self._recv_raw(i)
                self.pending_cmd[i] = None
                return msg
            except _ShardFailure as fail:
                self.failover(i, fail.reason)

    def ready(self, i: int) -> tuple:
        """The shard's ready handshake (possibly stashed by a failover)."""
        while True:
            if self.readies[i] is not None:
                return self.readies[i]
            try:
                self.readies[i] = self._recv_raw(i)
                return self.readies[i]
            except _ShardFailure as fail:
                self.failover(i, fail.reason)

    # -- recovery -----------------------------------------------------------

    def failover(self, i: int, reason: str) -> None:
        """Respawn shard ``i``, fast-forward it to the last completed
        window barrier, and re-post its pending command (if any).

        Loops until the shard is healthy or the respawn budget runs out —
        a freshly respawned worker dying during its own replay counts
        against the same budget (each round reaps before respawning, so
        no attempt leaks a process)."""
        while True:
            self._reap(i)
            self.respawns += 1
            if self.respawns > self.max_respawns:
                self.reap_all(grace_s=5.0)
                raise RuntimeError(
                    f"shard {i} failed ({reason}) and the respawn budget "
                    f"({self.max_respawns}) is exhausted")
            t0 = self.tracer.now_us() if self.tracer is not None else 0.0
            if self.tracer is not None:
                self.tracer.event("shard", "shard.down", track="coordinator",
                                  t=t0, args={"shard": i, "reason": reason,
                                              "respawn": self.respawns})
            pending = self.pending_cmd[i]
            completed = self.history[i]
            if pending is not None and completed and completed[-1] is pending:
                completed = completed[:-1]
            try:
                self.start(i)
                ready = self._recv_raw(i)
                if self.owner_digest is not None \
                        and ready[3] != self.owner_digest:
                    self.reap_all(grace_s=5.0)
                    raise RuntimeError(
                        f"respawned shard {i} computed a different "
                        f"partition — the builder is not deterministic")
                self.readies[i] = ready
                for msg in completed:
                    # Replayed windows re-ship their cut-crossing packets;
                    # those were routed the first time, so the replies are
                    # drained and discarded.
                    self._send_raw(i, msg)
                    self._recv_raw(i)
                if pending is not None:
                    self._send_raw(i, pending)
            except _ShardFailure as refail:
                reason = refail.reason
                continue
            if self.tracer is not None:
                self.tracer.span(
                    "shard", "failover", track="coordinator",
                    t0=t0, t1=self.tracer.now_us(),
                    args={"shard": i, "reason": reason,
                          "replayed_windows": len(completed),
                          "respawn": self.respawns})
            self.failovers.append({"shard": i, "reason": reason,
                                   "replayed_windows": len(completed)})
            return


def run_sharded(builder, kwargs: Optional[dict] = None, *,
                shards: int, until: int, seed: int = 0,
                sched: Optional[str] = None,
                collect: Optional[Callable] = None,
                probe: Optional[Callable] = None,
                checkpoints: Sequence[int] = (),
                audit: Optional[bool] = None,
                metrics: Optional[bool] = None,
                deadline_s: Optional[float] = None,
                max_respawns: int = 3) -> ShardedRun:
    """Execute ``builder``'s simulation to ``until`` across ``shards``
    worker processes; bit-identical to the same build run serially.

    ``builder(sim, **kwargs)`` must be a picklable module-level callable
    that only *builds* (never runs) and returns the topology handle — a
    ``Network``, anything with ``.net`` (optionally ``.topo`` for the
    structural fat-tree partition), or a ``{"net": ...}`` dict.  It is
    invoked identically in every worker; determinism of construction is
    what makes the replicas line up.

    ``collect(ctx)`` extracts one shard's picklable results at the end;
    ``probe(ctx, t)`` does the same at each time in ``checkpoints`` with
    every shard settled exactly at ``t`` (all events at or before ``t``
    executed — the moral equivalent of reading state after
    ``sim.run(until=t)`` serially).  Both receive the worker's
    :class:`ShardContext` (``ctx.built``, ``ctx.flows``, ``ctx.owns``).

    ``audit``/``metrics`` default to the ambient capture state
    (:func:`repro.audit.is_active` / :func:`repro.obs.is_active`); when
    active, per-shard captures run in the workers and the merged summary
    — including the cross-shard flow invariant checks the workers defer —
    is both returned and recorded into any open parent capture.

    Workers heartbeat to the coordinator; a worker that dies (SIGKILL,
    OOM) or goes silent past ``deadline_s`` (default
    ``REPRO_SHARD_DEADLINE``, 60 s) is reaped and failed over by the
    :class:`_ShardSupervisor` — respawned, its builder replayed, and its
    window history fast-forwarded to the last completed barrier — up to
    ``max_respawns`` times per run, with results bit-identical to a
    failure-free run (:attr:`ShardedRun.failovers` records each).  On
    unrecoverable errors every remaining worker is terminated and joined
    before the exception propagates: no orphan processes, ever.
    """
    from repro import audit as audit_mod
    from repro import obs as obs_mod

    if shards < 1:
        raise ValueError(f"need at least one shard, got {shards}")
    if until is None:
        raise ValueError("sharded runs need an explicit time horizon")
    checkpoints = sorted(set(checkpoints))
    if checkpoints and checkpoints[-1] > until:
        raise ValueError("checkpoints must lie within the run horizon")
    audit_on = audit_mod.is_active() if audit is None else bool(audit)
    metrics_on = obs_mod.is_active() if metrics is None else bool(metrics)
    from repro.obs import trace as trace_mod
    tracer = trace_mod.emit_target()
    trace_on = tracer is not None
    merge_t0 = None

    mp = multiprocessing.get_context()

    def spawn(shard_id: int):
        parent_conn, child_conn = mp.Pipe()
        proc = mp.Process(
            target=_shard_worker,
            args=(child_conn, builder, kwargs, shard_id, shards, seed,
                  sched, audit_on, metrics_on, trace_on, collect, probe),
            daemon=True)
        proc.start()
        child_conn.close()
        return parent_conn, proc

    sup = _ShardSupervisor(spawn, shards, deadline_s, max_respawns, tracer)
    try:
        sup.start_all()
        readies = [sup.ready(i) for i in range(shards)]
        lookahead, n_effective, owner_digest = readies[0][1:4]
        sup.owner_digest = owner_digest
        for i, ready in enumerate(readies):
            if ready[3] != owner_digest:
                sup.reap_all(grace_s=5.0)
                raise RuntimeError(
                    f"shard {i} computed a different partition than shard 0 "
                    f"— the builder is not deterministic across processes")
        next_times = [r[4] for r in readies]

        pending: List[List[tuple]] = [[] for _ in range(shards)]
        probes: Dict[int, List[Any]] = {}
        cp_idx = 0
        windows = 0

        def do_probe(t: int) -> None:
            probe_t0 = tracer.now_us() if tracer is not None else 0.0
            for i in range(shards):
                sup.post(i, ("probe", t))
            probes[t] = [sup.reply(i)[2] for i in range(shards)]
            if tracer is not None:
                tracer.span("shard", "probe", track="coordinator",
                            t0=probe_t0, t1=tracer.now_us(),
                            args={"t_ps": t, "shards": shards})

        while True:
            candidates = [t for t in next_times if t is not None]
            candidates += [m[1] for shard_msgs in pending for m in shard_msgs]
            window_start = min(candidates) if candidates else None
            # Checkpoints strictly before the next event: every shard's
            # state is already exactly the state at that instant.
            while cp_idx < len(checkpoints) and (
                    window_start is None
                    or checkpoints[cp_idx] < window_start):
                do_probe(checkpoints[cp_idx])
                cp_idx += 1
            if window_start is None or window_start > until:
                break
            window_end = until if lookahead is None \
                else min(window_start + lookahead - 1, until)
            if cp_idx < len(checkpoints) and checkpoints[cp_idx] <= window_end:
                window_end = checkpoints[cp_idx]
            grant_t0 = tracer.now_us() if tracer is not None else 0.0
            routed = 0
            for i in range(shards):
                sup.post(i, ("run", window_end, pending[i]), record=True)
                pending[i] = []
            for i in range(shards):
                reply = sup.reply(i)
                next_times[i] = reply[1]
                for message in reply[2]:
                    pending[message[0]].append(message[1:])
                    routed += 1
            if tracer is not None:
                tracer.span("shard", "window.grant", track="coordinator",
                            t0=grant_t0, t1=tracer.now_us(),
                            args={"window": windows,
                                  "start_ps": window_start,
                                  "end_ps": window_end, "routed": routed})
            windows += 1
            if cp_idx < len(checkpoints) and checkpoints[cp_idx] == window_end:
                do_probe(checkpoints[cp_idx])
                cp_idx += 1

        merge_t0 = tracer.now_us() if tracer is not None else None
        for i in range(shards):
            sup.post(i, ("collect",))
        results: List[Optional[dict]] = [None] * shards
        for i in range(shards):
            reply = sup.reply(i)
            results[reply[1]["shard"]] = reply[1]
    finally:
        sup.reap_all()

    run = ShardedRun(
        n_shards=shards,
        n_effective=n_effective,
        lookahead_ps=lookahead,
        windows=windows,
        events=sum(r["events"] for r in results),
        shards=results,
        collected=[r["collect"] for r in results],
        probes=probes,
        failovers=sup.failovers,
    )
    _merge_warnings(run)
    if audit_on:
        run.audit = _merge_audit(results, run.drained)
        audit_mod.record_summary(run.audit)
    if metrics_on:
        run.metrics = obs_mod.merge_summaries(
            [r["metrics"] for r in results])
        obs_mod.record_summary(run.metrics)
    if tracer is not None and merge_t0 is not None:
        # Stitch each worker's spans in under shard-qualified tracks
        # (``shard<i>/lane``), re-based onto this tracer's epoch, then
        # close the parent-side merge span over collect + merges.
        for r in results:
            tracer.ingest_blob(r.get("trace"), prefix=f"shard{r['shard']}/")
        tracer.span("shard", "merge", track="coordinator",
                    t0=merge_t0, t1=tracer.now_us(),
                    args={"shards": shards, "windows": windows,
                          "events": run.events})
    return run


def _merge_warnings(run: ShardedRun) -> None:
    results = run.shards
    rehashes = sum(r["rehashes"] for r in results)
    recoveries = sum(r["recoveries"] for r in results)
    if rehashes or recoveries:
        run.warnings.append(
            f"{rehashes} path rehash(es) / {recoveries} recovery(ies) fired: "
            f"rehashed ECMP hashes do not propagate to other shards' "
            f"replicas, so transit routing may diverge from a serial run")
    names = sorted({name for r in results for name in r["rng_consumed"]})
    for name in names:
        drawn_in = [r["shard"] for r in results
                    if r["rng_consumed"].get(name)]
        if len(drawn_in) >= 2:
            run.warnings.append(
                f"shared RNG stream {name!r} was drawn from in shards "
                f"{drawn_in}: per-shard draw order differs from serial, so "
                f"results may diverge from a serial run")


def _merge_audit(results: List[dict], drained: bool) -> dict:
    from repro.audit import merge_summaries
    from repro.audit.auditor import check_flow_account
    from repro.audit.report import AuditReport

    by_fid: Dict[int, List[dict]] = {}
    for r in results:
        for account in r.get("flow_accounts", ()):
            by_fid.setdefault(account["fid"], []).append(account)
    chaos_infos = [r.get("chaos") for r in results]
    topology_changed = any(c["topology_changed"] for c in chaos_infos if c)
    affected = set()
    for c in chaos_infos:
        if c:
            affected.update(tuple(link) for link in c["affected_links"])
    now = max((r["now"] for r in results), default=0)
    report = AuditReport()
    for fid in sorted(by_fid):
        check_flow_account(report, _merge_flow_account(by_fid[fid]),
                           drained, now,
                           topology_changed=topology_changed,
                           affected_links=affected)
    merged = merge_summaries([r["audit"] for r in results]
                             + [report.summary()])
    merged["runs"] = 1  # one simulation, not n_shards + 1
    return merged


def _merge_flow_account(accounts: List[dict]) -> dict:
    # Each counter increments in exactly one shard (delivery at the dst
    # owner, credit receipt at the src owner, drops wherever the dropping
    # port lives) while every other replica stays at zero — so plain sums
    # reconstruct the serial totals.  The subject string comes from the
    # dst-owner replica, whose delivery-side state matches serial.
    base = next((a for a in accounts if a.get("dst_owned")), accounts[0])
    merged = dict(base)
    for key in ("data_links", "credit_links"):
        merged[key] = sorted({tuple(link) for a in accounts
                              for link in a[key]})
    for key in ("bytes_delivered", "credits_received", "credit_drops",
                "injected_credit_drops"):
        merged[key] = sum(a[key] for a in accounts)
    sent = [a["credits_sent"] for a in accounts
            if a["credits_sent"] is not None]
    merged["credits_sent"] = sum(sent) if sent else None
    for key in ("completed", "started", "stopped"):
        merged[key] = any(a[key] for a in accounts)
    return merged

"""Matrix cell functions: the picklable units a compiled scenario runs.

One cell = one simulation = one :class:`repro.runtime.TaskSpec`, so the
process pool, content-addressed cache, retries, and audit capture all apply
unchanged.  Every argument is plain data (strings, ints, dicts) — chaos
plans arrive as ``FaultPlan.to_dict()`` dicts, ExpressPass parameters as a
named profile — which keeps cache keys stable across processes and spec
reloads.

``run_persistent`` generalizes Fig 15's measurement (long-running pairs,
steady-window utilization/fairness/queue) across all five concrete topology
families; its dumbbell branch is *the* implementation behind
:func:`repro.experiments.fig15_flow_scalability.run_point`, which is what
makes the spec-compiled fig15 path bit-identical to the hand-written one.
``run_poisson`` wraps :func:`repro.experiments.realistic.run_realistic`
(Fig 18–21 / Table 3 machinery) and flattens the result to a plain dict.
"""

from __future__ import annotations

from typing import Dict, List, Optional, Tuple

from repro.core import ExpressPassParams
from repro.core.params import REALISTIC_WORKLOAD_PARAMS
from repro.metrics import jain_index
from repro.metrics.fct import FctStats
from repro.sim.engine import Simulator
from repro.sim.units import GBPS, MS, SEC, US
from repro.topology import (
    LinkSpec,
    dumbbell,
    fat_tree,
    multi_bottleneck,
    parking_lot,
    single_switch,
)

#: ExpressPass parameter profiles selectable from a spec.
EP_PROFILES: Dict[str, Optional[ExpressPassParams]] = {
    "default": None,
    "realistic": REALISTIC_WORKLOAD_PARAMS,
}


def resolve_ep_profile(profile: str) -> Optional[ExpressPassParams]:
    if profile not in EP_PROFILES:
        raise ValueError(f"unknown ep_profile {profile!r}; "
                         f"choose from {sorted(EP_PROFILES)}")
    return EP_PROFILES[profile]


def _attach_chaos(sim: Simulator, net, chaos_plan: Optional[dict]):
    """Build the cell's ChaosController from a plan dict (or no-op)."""
    if chaos_plan is None:
        return None
    from repro.chaos import ChaosController, FaultPlan

    if getattr(sim, "chaos", None) is not None:
        raise RuntimeError(
            "scenario cells build their own fault plan; unset REPRO_CHAOS "
            "to run a spec with a chaos section")
    return ChaosController(sim, net, FaultPlan.from_dict(chaos_plan))


def _persistent_fabric(sim: Simulator, topology: str, n_flows: int,
                       spec: LinkSpec, topo_params: dict,
                       ) -> Tuple[object, List[Tuple[object, object]], int]:
    """Build the named topology and its flow pairing.

    Returns ``(topo, pairs, capacity_bps)`` where ``capacity_bps`` is the
    utilization denominator: the capacity of what the family actually
    shares (dumbbell/multi-bottleneck: the one contended link; parking lot:
    the sum of chain links; star and fat tree: the sum of per-pair edge
    capacity, since no single link is shared).
    """
    rate = spec.rate_bps
    if topology == "dumbbell":
        topo = dumbbell(sim, n_pairs=n_flows, bottleneck=spec)
        return topo, list(zip(topo.senders, topo.receivers)), rate
    if topology == "single_switch":
        topo = single_switch(sim, 2 * n_flows, link=spec)
        pairs = [(topo.hosts[i], topo.hosts[n_flows + i])
                 for i in range(n_flows)]
        return topo, pairs, n_flows * rate
    if topology == "parking_lot":
        topo = parking_lot(sim, n_bottlenecks=n_flows - 1, link=spec)
        pairs = [(topo.long_src, topo.long_dst)]
        pairs += list(zip(topo.cross_srcs, topo.cross_dsts))
        return topo, pairs, (n_flows - 1) * rate
    if topology == "multi_bottleneck":
        topo = multi_bottleneck(sim, n_cross_flows=n_flows - 1, link=spec)
        pairs = [(topo.flow0_src, topo.flow0_dst_hosts[0])]
        pairs += [(src, topo.flow0_dst_hosts[i + 1])
                  for i, src in enumerate(topo.cross_srcs)]
        return topo, pairs, rate
    if topology == "fat_tree":
        k = int(topo_params.get("k", 4))
        topo = fat_tree(sim, k, edge=spec)
        by_name = {h.name: h for h in topo.hosts}
        half = k // 2
        names = [(f"h{p}_{t}_{h}", f"h{p + 2}_{t}_{h}")
                 for p in range(half) for t in range(half)
                 for h in range(half)]
        if n_flows > len(names):
            raise ValueError(f"k={k} fat tree supports at most {len(names)} "
                             f"inter-pod pairs, got {n_flows}")
        pairs = [(by_name[a], by_name[b]) for a, b in names[:n_flows]]
        return topo, pairs, n_flows * rate
    raise ValueError(f"unknown topology kind {topology!r}")


def _goodput_gbps(totals: List[int], bin_ps: int) -> List[float]:
    bin_s = bin_ps * 1e-12
    return [(totals[i + 1] - totals[i]) * 8 / bin_s / 1e9
            for i in range(len(totals) - 1)]


def _first_sustained(gbps: List[float], threshold: float, start_bin: int,
                     bin_ps: int) -> int:
    """End time (ps) of the first of two consecutive bins >= threshold
    starting at ``start_bin``; -1 if never sustained."""
    for i in range(start_bin, len(gbps) - 1):
        if gbps[i] >= threshold and gbps[i + 1] >= threshold:
            return (i + 1) * bin_ps
    if len(gbps) == start_bin + 1 and gbps[start_bin] >= threshold:
        return (start_bin + 1) * bin_ps
    return -1


def run_persistent(
    protocol: str,
    n_flows: int,
    topology: str = "dumbbell",
    topo_params: Optional[dict] = None,
    rate_bps: int = 10 * GBPS,
    prop_delay_ps: int = 4 * US,
    warmup_ps: int = 50 * MS,
    measure_ps: int = 50 * MS,
    bin_ps: int = 500 * US,
    seed: int = 1,
    ep_profile: str = "default",
    ep_params: Optional[ExpressPassParams] = None,
    chaos_plan: Optional[dict] = None,
) -> dict:
    """One persistent-flow cell: long-running pairs, steady-window metrics.

    ``ep_params`` (an explicit parameter object) wins over ``ep_profile``
    (a named profile) — the spec path always uses the latter so kwargs stay
    plain data.  With a ``chaos_plan``, goodput recovery is measured the
    same way :mod:`repro.chaos.scenarios` does: pre-fault mean, fault-window
    minimum, and time until goodput sustains 90 % of the pre-fault level.
    """
    from repro.experiments.runner import get_harness

    topo_params = topo_params or {}
    params = ep_params if ep_params is not None \
        else resolve_ep_profile(ep_profile)
    sim = Simulator(seed=seed)
    base_rtt = 30 * US
    harness = get_harness(protocol, rate_bps, base_rtt, params)
    spec = harness.adapt_link(
        LinkSpec(rate_bps=rate_bps, prop_delay_ps=prop_delay_ps))
    topo, pairs, capacity_bps = _persistent_fabric(
        sim, topology, n_flows, spec, topo_params)
    chaos = _attach_chaos(sim, topo.net, chaos_plan)
    harness.install(sim, topo.net)
    flows = [harness.flow(src, dst, None) for src, dst in pairs]

    # Fixed-edge goodput sampling (read-only callbacks: they never perturb
    # the simulation, so the dumbbell branch stays bit-identical to the
    # hand-written fig15 path, which samples nothing).
    horizon_ps = warmup_ps + measure_ps
    n_bins = horizon_ps // bin_ps
    totals: List[int] = []

    def _sample() -> None:
        totals.append(sum(f.bytes_delivered for f in flows))

    for i in range(n_bins + 1):
        sim.schedule_at(i * bin_ps, _sample)

    sim.run(until=warmup_ps)
    base = {f: f.bytes_delivered for f in flows}
    sim.run(until=horizon_ps)
    seconds = measure_ps / 1e12
    rates = [(f.bytes_delivered - base[f]) * 8 / seconds for f in flows]

    gbps = _goodput_gbps(totals, bin_ps)
    steady = sum(rates) / 1e9
    threshold = 0.9 * (steady if steady > 0 else float("inf"))
    convergence_ps = _first_sustained(gbps, threshold, 0, bin_ps)

    row = {
        "protocol": protocol,
        "flows": n_flows,
        "utilization": sum(rates) / capacity_bps,
        "fairness": jain_index(rates),
        "max_queue_kb": topo.net.max_data_queue_bytes() / 1e3,
        "data_drops": topo.net.total_data_drops(),
        "topology": topology,
        "seed": seed,
        "agg_gbps": round(steady, 4),
        "convergence_ms": (round(convergence_ps / MS, 3)
                           if convergence_ps >= 0 else -1.0),
    }
    if chaos is not None:
        fault_ps = min(ev.t_ps for ev in chaos.plan.events)
        pre_bins = [gbps[i] for i in range(len(gbps))
                    if i * bin_ps >= warmup_ps
                    and (i + 1) * bin_ps <= fault_ps]
        fault_bins = [gbps[i] for i in range(len(gbps))
                      if i * bin_ps >= fault_ps]
        pre = sum(pre_bins) / len(pre_bins) if pre_bins else 0.0
        low = min(fault_bins) if fault_bins else 0.0
        tail = gbps[-2:] if len(gbps) >= 2 else gbps
        post = sum(tail) / len(tail) if tail else 0.0
        recovery_ps = _first_sustained(gbps, 0.9 * pre, fault_ps // bin_ps,
                                       bin_ps)
        if recovery_ps >= 0:
            recovery_ps -= fault_ps
        row.update({
            "pre_gbps": round(pre, 3),
            "low_gbps": round(low, 3),
            "recovered_frac": round(post / pre, 4) if pre > 0 else 0.0,
            "recovery_ms": (round(recovery_ps / MS, 3)
                            if recovery_ps >= 0 else -1.0),
            "faults": len(chaos.applied),
            "injected_credit": chaos.total_injected_credit,
            "injected_data": chaos.total_injected_data,
        })
    return row


def run_poisson(
    protocol: str,
    n_flows: int,
    distribution: str = "web_search",
    load: float = 0.6,
    rate_bps: int = 10 * GBPS,
    core_rate_bps: Optional[int] = None,
    size_cap_bytes: Optional[int] = 20_000_000,
    drain_ps: int = 1 * SEC,
    seed: int = 1,
    ep_profile: str = "default",
    chaos_plan: Optional[dict] = None,
) -> dict:
    """One realistic-workload cell on the scaled Clos, flattened to a dict.

    FCT statistics come back both overall (``avg_fct_ms``/``p99_fct_ms``
    across every completed flow) and per Table-2 size bucket (``buckets``),
    so the fig19 table and the matrix report both read off one shape.
    """
    from repro.experiments.realistic import run_realistic

    result = run_realistic(
        protocol, distribution, load, n_flows,
        rate_bps=rate_bps, core_rate_bps=core_rate_bps, seed=seed,
        ep_params=resolve_ep_profile(ep_profile),
        size_cap_bytes=size_cap_bytes, drain_ps=drain_ps,
        chaos_plan=chaos_plan)

    fcts_ps = [f.fct_ps for f in result.flows
               if f.fct_ps is not None and f.size_bytes is not None]
    overall = FctStats.from_fcts_ps(fcts_ps) if fcts_ps else None
    buckets = {
        bucket: {
            "flows": stats.count,
            "avg_fct_ms": stats.mean_s * 1e3,
            "p99_fct_ms": stats.p99_s * 1e3,
        }
        for bucket, stats in sorted(result.fct_by_bucket.items())
    }
    return {
        "protocol": protocol,
        "workload": distribution,
        "load": load,
        "flows": n_flows,
        "seed": seed,
        "completed": result.completed,
        "avg_fct_ms": overall.mean_s * 1e3 if overall else None,
        "p99_fct_ms": overall.p99_s * 1e3 if overall else None,
        "avg_queue_kb": result.avg_queue_kb,
        "max_queue_kb": result.max_queue_kb,
        "data_drops": result.data_drops,
        "credit_waste_ratio": result.credit_waste_ratio,
        "buckets": buckets,
    }

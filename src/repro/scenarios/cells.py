"""Matrix cell functions: the picklable units a compiled scenario runs.

One cell = one simulation = one :class:`repro.runtime.TaskSpec`, so the
process pool, content-addressed cache, retries, and audit capture all apply
unchanged.  Every argument is plain data (strings, ints, dicts) — chaos
plans arrive as ``FaultPlan.to_dict()`` dicts, ExpressPass parameters as a
named profile — which keeps cache keys stable across processes and spec
reloads.

``run_persistent`` generalizes Fig 15's measurement (long-running pairs,
steady-window utilization/fairness/queue) across all five concrete topology
families; its dumbbell branch is *the* implementation behind
:func:`repro.experiments.fig15_flow_scalability.run_point`, which is what
makes the spec-compiled fig15 path bit-identical to the hand-written one.
``run_poisson`` wraps :func:`repro.experiments.realistic.run_realistic`
(Fig 18–21 / Table 3 machinery) and flattens the result to a plain dict.
"""

from __future__ import annotations

from typing import Dict, List, Optional, Tuple

from repro.core import ExpressPassParams
from repro.core.params import REALISTIC_WORKLOAD_PARAMS
from repro.metrics import jain_index
from repro.metrics.fct import FctStats
from repro.sim.engine import Simulator
from repro.sim.units import GBPS, MS, SEC, US
from repro.topology import (
    LinkSpec,
    dumbbell,
    fat_tree,
    multi_bottleneck,
    parking_lot,
    single_switch,
)

#: One-shot flag so a sweep of poisson cells notes the shard fallback once.
_POISSON_SHARD_NOTED = False

#: ExpressPass parameter profiles selectable from a spec.
EP_PROFILES: Dict[str, Optional[ExpressPassParams]] = {
    "default": None,
    "realistic": REALISTIC_WORKLOAD_PARAMS,
}


def resolve_ep_profile(profile: str) -> Optional[ExpressPassParams]:
    if profile not in EP_PROFILES:
        raise ValueError(f"unknown ep_profile {profile!r}; "
                         f"choose from {sorted(EP_PROFILES)}")
    return EP_PROFILES[profile]


def _attach_chaos(sim: Simulator, net, chaos_plan: Optional[dict]):
    """Build the cell's ChaosController from a plan dict (or no-op)."""
    if chaos_plan is None:
        return None
    from repro.chaos import ChaosController, FaultPlan

    if getattr(sim, "chaos", None) is not None:
        raise RuntimeError(
            "scenario cells build their own fault plan; unset REPRO_CHAOS "
            "to run a spec with a chaos section")
    return ChaosController(sim, net, FaultPlan.from_dict(chaos_plan))


def _persistent_fabric(sim: Simulator, topology: str, n_flows: int,
                       spec: LinkSpec, topo_params: dict,
                       ) -> Tuple[object, List[Tuple[object, object]], int]:
    """Build the named topology and its flow pairing.

    Returns ``(topo, pairs, capacity_bps)`` where ``capacity_bps`` is the
    utilization denominator: the capacity of what the family actually
    shares (dumbbell/multi-bottleneck: the one contended link; parking lot:
    the sum of chain links; star and fat tree: the sum of per-pair edge
    capacity, since no single link is shared).
    """
    rate = spec.rate_bps
    if topology == "dumbbell":
        topo = dumbbell(sim, n_pairs=n_flows, bottleneck=spec)
        return topo, list(zip(topo.senders, topo.receivers)), rate
    if topology == "single_switch":
        topo = single_switch(sim, 2 * n_flows, link=spec)
        pairs = [(topo.hosts[i], topo.hosts[n_flows + i])
                 for i in range(n_flows)]
        return topo, pairs, n_flows * rate
    if topology == "parking_lot":
        topo = parking_lot(sim, n_bottlenecks=n_flows - 1, link=spec)
        pairs = [(topo.long_src, topo.long_dst)]
        pairs += list(zip(topo.cross_srcs, topo.cross_dsts))
        return topo, pairs, (n_flows - 1) * rate
    if topology == "multi_bottleneck":
        topo = multi_bottleneck(sim, n_cross_flows=n_flows - 1, link=spec)
        pairs = [(topo.flow0_src, topo.flow0_dst_hosts[0])]
        pairs += [(src, topo.flow0_dst_hosts[i + 1])
                  for i, src in enumerate(topo.cross_srcs)]
        return topo, pairs, rate
    if topology == "fat_tree":
        k = int(topo_params.get("k", 4))
        topo = fat_tree(sim, k, edge=spec)
        by_name = {h.name: h for h in topo.hosts}
        half = k // 2
        names = [(f"h{p}_{t}_{h}", f"h{p + 2}_{t}_{h}")
                 for p in range(half) for t in range(half)
                 for h in range(half)]
        if n_flows > len(names):
            raise ValueError(f"k={k} fat tree supports at most {len(names)} "
                             f"inter-pod pairs, got {n_flows}")
        pairs = [(by_name[a], by_name[b]) for a, b in names[:n_flows]]
        return topo, pairs, n_flows * rate
    raise ValueError(f"unknown topology kind {topology!r}")


def _persistent_cell_builder(sim: Simulator, *, protocol: str, n_flows: int,
                             topology: str, topo_params: dict, rate_bps: int,
                             prop_delay_ps: int, warmup_ps: int,
                             measure_ps: int, bin_ps: int,
                             ep_profile: str,
                             ep_params: Optional[ExpressPassParams],
                             chaos_plan: Optional[dict]):
    """Build (never run) one persistent cell; shared by every shard.

    Mirrors the construction half of :func:`run_persistent` exactly — same
    harness, fabric, chaos, flow order, and sampler schedule — so a sharded
    execution replays the serial event stream bit-for-bit.  The per-bin
    sampler only counts flows whose *destination* this shard owns (delivery
    updates ``bytes_delivered`` in the dst-owner alone; replicas stay 0),
    which makes the parent's elementwise sum equal the serial totals.
    """
    from types import SimpleNamespace

    from repro.experiments.runner import get_harness

    params = ep_params if ep_params is not None \
        else resolve_ep_profile(ep_profile)
    base_rtt = 30 * US
    harness = get_harness(protocol, rate_bps, base_rtt, params)
    spec = harness.adapt_link(
        LinkSpec(rate_bps=rate_bps, prop_delay_ps=prop_delay_ps))
    topo, pairs, capacity_bps = _persistent_fabric(
        sim, topology, n_flows, spec, topo_params or {})
    chaos = _attach_chaos(sim, topo.net, chaos_plan)
    harness.install(sim, topo.net)
    flows = [harness.flow(src, dst, None) for src, dst in pairs]

    horizon_ps = warmup_ps + measure_ps
    n_bins = horizon_ps // bin_ps
    totals: List[int] = []
    shard = getattr(sim, "shard", None)

    def _sample() -> None:
        # Ownership is applied after the builder returns but before any
        # event fires, so reading it lazily here is safe.
        totals.append(sum(f.bytes_delivered for f in flows
                          if shard is None or shard.owns(f.dst.id)))

    for i in range(n_bins + 1):
        sim.schedule_at(i * bin_ps, _sample)

    return SimpleNamespace(net=topo.net, topo=topo, flows=flows,
                           totals=totals, chaos=chaos,
                           capacity_bps=capacity_bps)


def _persistent_cell_probe(ctx, t: int) -> Dict[int, int]:
    """Warmup-checkpoint read: dst-owned flows' delivered bytes at ``t``."""
    return {f.fid: f.bytes_delivered for f in ctx.built.flows
            if ctx.owns(f.dst.id)}


def _persistent_cell_collect(ctx) -> dict:
    built = ctx.built
    chaos = built.chaos
    return {
        "totals": list(built.totals),
        "final": {f.fid: f.bytes_delivered for f in built.flows
                  if ctx.owns(f.dst.id)},
        "fids": [f.fid for f in built.flows],  # creation order, replicated
        "capacity_bps": built.capacity_bps,
        "max_queue_bytes": built.net.max_data_queue_bytes(),
        "data_drops": built.net.total_data_drops(),
        # The fault plan replays identically in every shard (time-driven,
        # per-burst RNG streams), so these match shard 0 == serial.
        "chaos": None if chaos is None else {
            "fault_ps": min(ev.t_ps for ev in chaos.plan.events),
            "faults": len(chaos.applied),
            "injected_credit": chaos.total_injected_credit,
            "injected_data": chaos.total_injected_data,
        },
    }


def _goodput_gbps(totals: List[int], bin_ps: int) -> List[float]:
    bin_s = bin_ps * 1e-12
    return [(totals[i + 1] - totals[i]) * 8 / bin_s / 1e9
            for i in range(len(totals) - 1)]


def _first_sustained(gbps: List[float], threshold: float, start_bin: int,
                     bin_ps: int) -> int:
    """End time (ps) of the first of two consecutive bins >= threshold
    starting at ``start_bin``; -1 if never sustained."""
    for i in range(start_bin, len(gbps) - 1):
        if gbps[i] >= threshold and gbps[i + 1] >= threshold:
            return (i + 1) * bin_ps
    if len(gbps) == start_bin + 1 and gbps[start_bin] >= threshold:
        return (start_bin + 1) * bin_ps
    return -1


def _persistent_row(protocol: str, n_flows: int, topology: str, seed: int,
                    rates: List[float], capacity_bps: int,
                    max_queue_bytes: int, data_drops: int,
                    totals: List[int], bin_ps: int, warmup_ps: int,
                    chaos_stats: Optional[dict]) -> dict:
    """Fold raw measurements into the cell's result row.

    Shared verbatim by the serial and sharded paths: both hand over the
    same integers (per-flow delivered-byte deltas in flow-creation order,
    elementwise-summed bin totals), so every float here — sums, Jain
    index, thresholds — comes out bit-identical.
    """
    gbps = _goodput_gbps(totals, bin_ps)
    steady = sum(rates) / 1e9
    threshold = 0.9 * (steady if steady > 0 else float("inf"))
    convergence_ps = _first_sustained(gbps, threshold, 0, bin_ps)

    row = {
        "protocol": protocol,
        "flows": n_flows,
        "utilization": sum(rates) / capacity_bps,
        "fairness": jain_index(rates),
        "max_queue_kb": max_queue_bytes / 1e3,
        "data_drops": data_drops,
        "topology": topology,
        "seed": seed,
        "agg_gbps": round(steady, 4),
        "convergence_ms": (round(convergence_ps / MS, 3)
                           if convergence_ps >= 0 else -1.0),
    }
    if chaos_stats is not None:
        fault_ps = chaos_stats["fault_ps"]
        pre_bins = [gbps[i] for i in range(len(gbps))
                    if i * bin_ps >= warmup_ps
                    and (i + 1) * bin_ps <= fault_ps]
        fault_bins = [gbps[i] for i in range(len(gbps))
                      if i * bin_ps >= fault_ps]
        pre = sum(pre_bins) / len(pre_bins) if pre_bins else 0.0
        low = min(fault_bins) if fault_bins else 0.0
        tail = gbps[-2:] if len(gbps) >= 2 else gbps
        post = sum(tail) / len(tail) if tail else 0.0
        recovery_ps = _first_sustained(gbps, 0.9 * pre, fault_ps // bin_ps,
                                       bin_ps)
        if recovery_ps >= 0:
            recovery_ps -= fault_ps
        row.update({
            "pre_gbps": round(pre, 3),
            "low_gbps": round(low, 3),
            "recovered_frac": round(post / pre, 4) if pre > 0 else 0.0,
            "recovery_ms": (round(recovery_ps / MS, 3)
                            if recovery_ps >= 0 else -1.0),
            "faults": chaos_stats["faults"],
            "injected_credit": chaos_stats["injected_credit"],
            "injected_data": chaos_stats["injected_data"],
        })
    return row


def _config_shards() -> int:
    """Shard count from the active runtime config, gated to safe contexts.

    Execution policy only — callers must produce the same row either way.
    Daemonic workers (``multiprocessing.Pool``-style) cannot spawn the
    shard processes, so those fall back to serial silently.
    """
    import multiprocessing

    from repro.runtime.config import get_config

    shards = get_config().shards
    if shards > 1 and multiprocessing.current_process().daemon:
        return 0
    return shards


def run_persistent(
    protocol: str,
    n_flows: int,
    topology: str = "dumbbell",
    topo_params: Optional[dict] = None,
    rate_bps: int = 10 * GBPS,
    prop_delay_ps: int = 4 * US,
    warmup_ps: int = 50 * MS,
    measure_ps: int = 50 * MS,
    bin_ps: int = 500 * US,
    seed: int = 1,
    ep_profile: str = "default",
    ep_params: Optional[ExpressPassParams] = None,
    chaos_plan: Optional[dict] = None,
) -> dict:
    """One persistent-flow cell: long-running pairs, steady-window metrics.

    ``ep_params`` (an explicit parameter object) wins over ``ep_profile``
    (a named profile) — the spec path always uses the latter so kwargs stay
    plain data.  With a ``chaos_plan``, goodput recovery is measured the
    same way :mod:`repro.chaos.scenarios` does: pre-fault mean, fault-window
    minimum, and time until goodput sustains 90 % of the pre-fault level.

    With ``RuntimeConfig.shards > 1`` (``REPRO_SHARDS`` / ``--shards``) the
    one simulation is sharded across worker processes via
    :mod:`repro.sim.parallel`; the row is bit-identical to serial, so the
    shard count never enters the cell's kwargs or cache key.
    """
    shards = _config_shards()
    if shards > 1:
        return _run_persistent_sharded(
            shards, protocol, n_flows, topology, topo_params,
            rate_bps, prop_delay_ps, warmup_ps, measure_ps, bin_ps, seed,
            ep_profile, ep_params, chaos_plan)

    from repro.obs import trace as obs_trace
    tracer = obs_trace.emit_target()

    build_t0 = tracer.now_us() if tracer is not None else 0.0
    sim = Simulator(seed=seed)
    built = _persistent_cell_builder(
        sim, protocol=protocol, n_flows=n_flows, topology=topology,
        topo_params=topo_params or {}, rate_bps=rate_bps,
        prop_delay_ps=prop_delay_ps, warmup_ps=warmup_ps,
        measure_ps=measure_ps, bin_ps=bin_ps, ep_profile=ep_profile,
        ep_params=ep_params, chaos_plan=chaos_plan)
    flows = built.flows
    if tracer is not None:
        tracer.span("sim", "cell.build", track="phases",
                    t0=build_t0, t1=tracer.now_us(),
                    args={"protocol": protocol, "topology": topology,
                          "flows": n_flows})

    horizon_ps = warmup_ps + measure_ps
    warm_t0 = tracer.now_us() if tracer is not None else 0.0
    sim.run(until=warmup_ps)
    if tracer is not None:
        tracer.span("sim", "cell.warmup", track="phases.sim", clock="sim",
                    t0=0, t1=warmup_ps,
                    args={"wall_us": round(tracer.now_us() - warm_t0, 3)})
    base = {f: f.bytes_delivered for f in flows}
    meas_t0 = tracer.now_us() if tracer is not None else 0.0
    sim.run(until=horizon_ps)
    if tracer is not None:
        tracer.span("sim", "cell.measure", track="phases.sim", clock="sim",
                    t0=warmup_ps, t1=horizon_ps,
                    args={"wall_us": round(tracer.now_us() - meas_t0, 3)})
    fin_t0 = tracer.now_us() if tracer is not None else 0.0
    seconds = measure_ps / 1e12
    rates = [(f.bytes_delivered - base[f]) * 8 / seconds for f in flows]

    chaos = built.chaos
    chaos_stats = None if chaos is None else {
        "fault_ps": min(ev.t_ps for ev in chaos.plan.events),
        "faults": len(chaos.applied),
        "injected_credit": chaos.total_injected_credit,
        "injected_data": chaos.total_injected_data,
    }
    row = _persistent_row(
        protocol, n_flows, topology, seed, rates, built.capacity_bps,
        built.net.max_data_queue_bytes(), built.net.total_data_drops(),
        built.totals, bin_ps, warmup_ps, chaos_stats)
    if tracer is not None:
        tracer.span("sim", "cell.finalize", track="phases",
                    t0=fin_t0, t1=tracer.now_us(),
                    args={"protocol": protocol})
    return row


def _run_persistent_sharded(shards: int, protocol: str, n_flows: int,
                            topology: Optional[str], topo_params,
                            rate_bps: int, prop_delay_ps: int,
                            warmup_ps: int, measure_ps: int, bin_ps: int,
                            seed: int, ep_profile: str, ep_params,
                            chaos_plan: Optional[dict]) -> dict:
    """Run one persistent cell sharded; same row as the serial path.

    The builder replays identically in every worker; the parent merges
    integers only (per-fid byte deltas keyed to flow-creation order,
    elementwise bin-total sums, max of per-shard queue maxima, drop sums)
    and defers every float to :func:`_persistent_row`.
    """
    from repro.obs import trace as obs_trace
    from repro.sim.parallel import run_sharded

    tracer = obs_trace.emit_target()
    horizon_ps = warmup_ps + measure_ps
    run = run_sharded(
        _persistent_cell_builder,
        dict(protocol=protocol, n_flows=n_flows, topology=topology,
             topo_params=topo_params or {}, rate_bps=rate_bps,
             prop_delay_ps=prop_delay_ps, warmup_ps=warmup_ps,
             measure_ps=measure_ps, bin_ps=bin_ps, ep_profile=ep_profile,
             ep_params=ep_params, chaos_plan=chaos_plan),
        shards=shards, until=horizon_ps, seed=seed,
        collect=_persistent_cell_collect, probe=_persistent_cell_probe,
        checkpoints=(warmup_ps,))

    merge_t0 = tracer.now_us() if tracer is not None else 0.0
    cols = run.collected
    base: Dict[int, int] = {}
    for shard_base in run.probes[warmup_ps]:
        base.update(shard_base)
    final: Dict[int, int] = {}
    for c in cols:
        final.update(c["final"])
    seconds = measure_ps / 1e12
    rates = [(final[fid] - base[fid]) * 8 / seconds
             for fid in cols[0]["fids"]]
    totals = [sum(c["totals"][i] for c in cols)
              for i in range(len(cols[0]["totals"]))]
    row = _persistent_row(
        protocol, n_flows, topology, seed, rates, cols[0]["capacity_bps"],
        max(c["max_queue_bytes"] for c in cols),
        sum(c["data_drops"] for c in cols),
        totals, bin_ps, warmup_ps, cols[0]["chaos"])
    if tracer is not None:
        tracer.span("sim", "cell.merge", track="phases",
                    t0=merge_t0, t1=tracer.now_us(),
                    args={"protocol": protocol, "shards": shards,
                          "windows": run.windows})
    return row


def run_poisson(
    protocol: str,
    n_flows: int,
    distribution: str = "web_search",
    load: float = 0.6,
    rate_bps: int = 10 * GBPS,
    core_rate_bps: Optional[int] = None,
    size_cap_bytes: Optional[int] = 20_000_000,
    drain_ps: int = 1 * SEC,
    seed: int = 1,
    ep_profile: str = "default",
    chaos_plan: Optional[dict] = None,
) -> dict:
    """One realistic-workload cell on the scaled Clos, flattened to a dict.

    FCT statistics come back both overall (``avg_fct_ms``/``p99_fct_ms``
    across every completed flow) and per Table-2 size bucket (``buckets``),
    so the fig19 table and the matrix report both read off one shape.

    Poisson cells always run serially: the realistic workload draws its
    open-loop arrivals from shared named RNG streams, which
    :mod:`repro.sim.parallel` cannot split without diverging from serial
    (a ``--shards`` setting is noted and ignored here).
    """
    import sys

    from repro.experiments.realistic import run_realistic

    global _POISSON_SHARD_NOTED
    if _config_shards() > 1 and not _POISSON_SHARD_NOTED:
        _POISSON_SHARD_NOTED = True
        print("repro: shards>1 applies to persistent cells only; "
              "poisson cells run serially", file=sys.stderr)

    from repro.obs import trace as obs_trace
    tracer = obs_trace.emit_target()
    run_t0 = tracer.now_us() if tracer is not None else 0.0

    result = run_realistic(
        protocol, distribution, load, n_flows,
        rate_bps=rate_bps, core_rate_bps=core_rate_bps, seed=seed,
        ep_params=resolve_ep_profile(ep_profile),
        size_cap_bytes=size_cap_bytes, drain_ps=drain_ps,
        chaos_plan=chaos_plan)
    if tracer is not None:
        tracer.span("sim", "cell.poisson", track="phases",
                    t0=run_t0, t1=tracer.now_us(),
                    args={"protocol": protocol, "workload": distribution,
                          "load": load, "flows": n_flows})

    fcts_ps = [f.fct_ps for f in result.flows
               if f.fct_ps is not None and f.size_bytes is not None]
    overall = FctStats.from_fcts_ps(fcts_ps) if fcts_ps else None
    buckets = {
        bucket: {
            "flows": stats.count,
            "avg_fct_ms": stats.mean_s * 1e3,
            "p99_fct_ms": stats.p99_s * 1e3,
        }
        for bucket, stats in sorted(result.fct_by_bucket.items())
    }
    return {
        "protocol": protocol,
        "workload": distribution,
        "load": load,
        "flows": n_flows,
        "seed": seed,
        "completed": result.completed,
        "avg_fct_ms": overall.mean_s * 1e3 if overall else None,
        "p99_fct_ms": overall.p99_s * 1e3 if overall else None,
        "avg_queue_kb": result.avg_queue_kb,
        "max_queue_kb": result.max_queue_kb,
        "data_drops": result.data_drops,
        "credit_waste_ratio": result.credit_waste_ratio,
        "buckets": buckets,
    }

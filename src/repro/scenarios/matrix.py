"""Running a compiled matrix: spec in, ranked report out.

This is the thin orchestration layer between the compiler and the runtime:
it owns none of the policy.  Parallelism, caching, retries, timeouts, audit
and metrics capture all come from the ambient
:class:`repro.runtime.RuntimeConfig` — ``repro matrix --parallel 8 --audit``
behaves exactly like ``repro run`` because both funnel through
:func:`repro.runtime.run_tasks`.
"""

from __future__ import annotations

import contextlib
from dataclasses import dataclass
from typing import List, Optional, Sequence

from repro.runtime import run_tasks
from repro.runtime.config import get_config, using
from repro.scenarios.compiler import (
    CompiledMatrix,
    cell_rows,
    compile_scenario,
)
from repro.scenarios.report import MatrixReport, build_report
from repro.scenarios.schema import Scenario, SpecError


@dataclass
class MatrixOutcome:
    """A finished matrix run: the cells, their results, and the report."""

    matrix: CompiledMatrix
    results: List  # ordered repro.runtime.TaskResult list
    report: MatrixReport

    @property
    def ok(self) -> bool:
        """True when every cell produced a result."""
        return all(r.error is None for r in self.results)

    @property
    def failed(self) -> List:
        return [r for r in self.results if r.error is not None]


def run_matrix(scenario: Scenario,
               seeds: Optional[Sequence[int]] = None,
               cell_filter: Optional[str] = None) -> MatrixOutcome:
    """Compile and execute ``scenario``, then build its report.

    ``seeds`` overrides the spec's seed list; ``cell_filter`` keeps only
    matching cells (``--filter`` semantics — filtering an entire matrix
    away is a :class:`SpecError`, since an empty run almost always means a
    typo in the filter, not an empty intent).
    """
    matrix = compile_scenario(scenario, seeds=seeds)
    if cell_filter:
        matrix = matrix.filtered(cell_filter)
        if not matrix.cells:
            raise SpecError(
                ("<filter>", f"filter {cell_filter!r} matches none of the "
                             f"{scenario.cell_count} cell(s)"),
                source=scenario.name)
    # ``timing.shards`` is execution policy the spec may request: it raises
    # the runtime shard count only when nothing set one (config 0 = unset;
    # an explicit ``--shards``/``REPRO_SHARDS`` — even 1, serial — wins).
    # It never reaches cell kwargs, so cache keys are unaffected.
    spec_shards = int(scenario.timing.get("shards", 1))
    from repro.obs import trace as obs_trace
    tracer = obs_trace.emit_target()
    if tracer is not None:
        # Annotate before the sweep: the runtime recorder merges each
        # cell's spec axes into its task span as it finishes.
        for cell in matrix.cells:
            tracer.annotate(cell.label, dict(cell.axes, seed=cell.seed))
    with contextlib.ExitStack() as stack:
        if spec_shards > 1 and get_config().shards == 0:
            stack.enter_context(using(shards=spec_shards))
        results = run_tasks(matrix.plan())
    if tracer is not None:
        # One cell-layer span per cell, linked to its scheduler task span
        # (same interval — the cell layer re-keys the timeline by science
        # axes rather than execution order).
        for cell, result in zip(matrix.cells, results):
            interval = tracer.task_spans.get(result.index)
            t_now = tracer.now_us()
            t0 = interval["t0"] if interval else t_now
            t1 = interval["t1"] if interval else t_now
            args = dict(cell.axes, seed=cell.seed, scenario=scenario.name,
                        cached=result.cached)
            if result.error is not None:
                args["error"] = result.error
            tracer.span("cell", cell.label, track=f"cell/{cell.index}",
                        t0=t0, t1=t1, args=args,
                        link=interval["id"] if interval else None)
    rows = cell_rows(matrix, results)
    meta = {
        "cells": len(results),
        "cached": sum(1 for r in results if r.cached),
        "wall_s": round(sum(r.wall_s for r in results), 3),
    }
    spec_report = scenario.report or {}
    coords = [axis for axis, _v in matrix.cells[0].axes] if matrix.cells \
        else []
    report = build_report(
        scenario.name, rows,
        compare=spec_report.get("compare", "transport.protocol"),
        objectives=spec_report.get("objectives") or None,
        meta=meta, coords=coords)
    return MatrixOutcome(matrix=matrix, results=results, report=report)


__all__ = ["MatrixOutcome", "run_matrix"]

"""repro.scenarios — declarative scenarios and the full-matrix harness.

A scenario spec (YAML or JSON) names a point in the repo's evaluation
space — ``topology × workload × transport × chaos × timing`` — plus
``sweep`` axes to cross-product over.  The pipeline::

    spec file --load--> Scenario --compile--> TaskSpecs --run--> MatrixReport

Each stage is importable on its own: :mod:`~repro.scenarios.schema`
validates, :mod:`~repro.scenarios.loader` parses files,
:mod:`~repro.scenarios.compiler` lowers to the runtime,
:mod:`~repro.scenarios.cells` holds the picklable cell functions,
:mod:`~repro.scenarios.matrix` executes, and
:mod:`~repro.scenarios.report` ranks and exports.

``python -m repro matrix <spec>`` drives the whole pipeline;
``python -m repro scenarios list|validate`` inspects the bundled library
(the repository's top-level ``scenarios/`` directory).
"""

from repro.scenarios.schema import (  # noqa: F401
    BACKENDS,
    SCHEMA,
    SWEEP_AXES,
    Scenario,
    SpecError,
    TOPOLOGY_KINDS,
    WORKLOAD_KINDS,
    fluid_blockers,
)
from repro.scenarios.loader import (  # noqa: F401
    dumps,
    iter_library,
    library_dir,
    lint,
    load,
    loads,
    resolve_spec,
)
from repro.scenarios.compiler import (  # noqa: F401
    Cell,
    CompiledMatrix,
    cell_rows,
    compile_scenario,
    match_cell,
)
from repro.scenarios.matrix import MatrixOutcome, run_matrix  # noqa: F401
from repro.scenarios.report import (  # noqa: F401
    MatrixReport,
    REPORT_SCHEMA,
    build_report,
    format_report,
    load_report_jsonl,
    validate_report_jsonl,
    write_report_csv,
    write_report_jsonl,
)

__all__ = [
    "BACKENDS", "SCHEMA", "SWEEP_AXES", "TOPOLOGY_KINDS", "WORKLOAD_KINDS",
    "Scenario", "SpecError", "fluid_blockers",
    "load", "loads", "dumps", "lint", "library_dir", "iter_library",
    "resolve_spec",
    "Cell", "CompiledMatrix", "compile_scenario", "cell_rows", "match_cell",
    "MatrixOutcome", "run_matrix",
    "MatrixReport", "REPORT_SCHEMA", "build_report", "format_report",
    "write_report_jsonl", "load_report_jsonl", "validate_report_jsonl",
    "write_report_csv",
]

"""Lowering: ``Scenario`` → cross-product of picklable runtime TaskSpecs.

The compiler expands a scenario's ``sweep`` axes (declaration order, first
axis outermost) with ``seeds`` as the implicit innermost axis, re-validates
every full combination (two individually-valid axis values can still
conflict — e.g. a swept ``workload.n_flows`` exceeding a swept fat-tree
arity), and lowers each cell to a :class:`~repro.runtime.TaskSpec` over
:func:`repro.scenarios.cells.run_persistent` or
:func:`~repro.scenarios.cells.run_poisson`.

Everything in a compiled kwargs dict is plain data — chaos sections resolve
to ``FaultPlan.to_dict()`` dicts *at compile time* (named scenarios seeded
with the cell seed, plan files read once and embedded) — so
``TaskSpec.identity`` is a pure function of the spec text.  That is the
determinism contract the cache relies on: compiling the same spec twice,
in different processes, on different days, yields byte-identical task
fingerprints and therefore warm cache hits.
"""

from __future__ import annotations

import itertools
import pathlib
from dataclasses import dataclass, replace
from typing import Any, Dict, List, Optional, Sequence, Tuple

from repro.runtime import SweepPlan, TaskSpec
from repro.scenarios import cells
from repro.scenarios.schema import Scenario, SpecError, get_by_path


@dataclass(frozen=True)
class Cell:
    """One point of the expanded matrix: a task plus its coordinates.

    ``axes`` is the ordered ``(axis, value)`` tuple that locates the cell in
    the cross-product (sweep axes first, then ``("seed", s)``); ``label`` is
    the human-readable form used by progress display, ``--filter``, and the
    report.
    """

    index: int
    label: str
    axes: Tuple[Tuple[str, Any], ...]
    seed: int
    task: TaskSpec

    @property
    def fingerprint(self) -> str:
        """The task's stable identity (the cache key's plaintext)."""
        return self.task.identity


@dataclass(frozen=True)
class CompiledMatrix:
    """A scenario lowered to an ordered list of cells."""

    scenario: Scenario
    cells: Tuple[Cell, ...]

    def __len__(self) -> int:
        return len(self.cells)

    def plan(self, name: Optional[str] = None) -> SweepPlan:
        """The runtime sweep plan (order == cell order == spec order)."""
        return SweepPlan(name or self.scenario.name,
                         tuple(c.task for c in self.cells))

    def filtered(self, expr: str) -> "CompiledMatrix":
        """Cells whose label matches ``expr`` (see :func:`match_cell`)."""
        kept = tuple(c for c in self.cells if match_cell(c, expr))
        return CompiledMatrix(self.scenario, kept)


def match_cell(cell: Cell, expr: str) -> bool:
    """``--filter`` semantics: space-separated terms, all must match.

    A term of the form ``axis=value`` matches that coordinate exactly
    (``protocol=dctcp``, ``seed=2``; the axis may be the full dotted path or
    its last segment).  Any other term is a substring match on the label.
    """
    for term in expr.split():
        if "=" in term:
            axis, _, want = term.partition("=")
            hit = False
            for path, value in cell.axes:
                if path == axis or path.rsplit(".", 1)[-1] == axis:
                    hit = str(value) == want
                    break
            if not hit:
                return False
        elif term not in cell.label:
            return False
    return True


def _short(axis: str) -> str:
    return axis.rsplit(".", 1)[-1]


def _lower_chaos(name: str, chaos: Dict[str, Any], seed: int,
                 base_dir: Optional[pathlib.Path]) -> dict:
    """Resolve a validated chaos section to a plain ``FaultPlan`` dict."""
    from repro.chaos.plan import FaultPlan, event_from_dict
    from repro.chaos.scenarios import plan_for

    if "scenario" in chaos:
        # Named fabric scenario: stochastic faults draw from the cell seed,
        # so sweeping seeds varies the fault realization with the traffic.
        return plan_for(chaos["scenario"], seed=seed,
                        fault_ps=chaos["fault_ps"],
                        duration_ps=chaos["duration_ps"],
                        reconverge_delay_ps=chaos["reconverge_delay_ps"],
                        ).to_dict()
    if "plan" in chaos:
        path = pathlib.Path(chaos["plan"])
        if not path.is_absolute() and base_dir is not None:
            path = base_dir / path
        plan = FaultPlan.load(path)
        if "seed" in chaos:
            plan = plan.with_seed(chaos["seed"])
        return plan.to_dict()
    events = tuple(event_from_dict(ev) for ev in chaos["events"])
    return FaultPlan(name=f"{name}-inline", seed=chaos.get("seed", seed),
                     reconverge_delay_ps=chaos["reconverge_delay_ps"],
                     events=events).to_dict()


def _lower_cell(scenario: Scenario, seed: int) -> TaskSpec:
    """One fully-resolved scenario + seed → a picklable TaskSpec."""
    topo, wl, tr = scenario.topology, scenario.workload, scenario.transport
    timing = scenario.timing
    chaos_plan = (None if scenario.chaos is None else
                  _lower_chaos(scenario.name, scenario.chaos, seed,
                               scenario.base_dir))
    if wl["kind"] == "persistent":
        kwargs: Dict[str, Any] = {
            "protocol": tr["protocol"],
            "n_flows": wl["n_flows"],
            "topology": topo["kind"],
            "rate_bps": topo["rate_bps"],
            "prop_delay_ps": topo["prop_delay_ps"],
            "warmup_ps": timing["warmup_ps"],
            "measure_ps": timing["measure_ps"],
            "bin_ps": timing["bin_ps"],
            "seed": seed,
            "ep_profile": tr["ep_profile"],
        }
        if topo["params"]:
            kwargs["topo_params"] = dict(topo["params"])
        if scenario.backend == "fluid":
            # Same kwargs, different cell function: the fluid task keys
            # differ from the packet task's only through the function
            # reference, so packet fingerprints are untouched by the
            # backend field's existence.  Validation guarantees no chaos
            # plan reaches a fluid cell.
            from repro.sim.fluid import cells as fluid_cells
            return TaskSpec(fluid_cells.run_fluid, kwargs)
        if chaos_plan is not None:
            kwargs["chaos_plan"] = chaos_plan
        return TaskSpec(cells.run_persistent, kwargs)
    kwargs = {
        "protocol": tr["protocol"],
        "n_flows": wl["n_flows"],
        "distribution": wl["distribution"],
        "load": wl["load"],
        "rate_bps": topo["rate_bps"],
        "size_cap_bytes": wl["size_cap_bytes"],
        "drain_ps": timing["drain_ps"],
        "seed": seed,
        "ep_profile": tr["ep_profile"],
    }
    if topo["params"].get("core_rate_bps") is not None:
        kwargs["core_rate_bps"] = topo["params"]["core_rate_bps"]
    if chaos_plan is not None:
        kwargs["chaos_plan"] = chaos_plan
    return TaskSpec(cells.run_poisson, kwargs)


def _check_chaos_window(scenario: Scenario, where: str,
                        errors: List[Tuple[str, str]]) -> None:
    """Named fabric faults must land inside the measured horizon."""
    chaos = scenario.chaos
    if not chaos or "scenario" not in chaos:
        return
    warmup = scenario.timing["warmup_ps"]
    horizon = warmup + scenario.timing["measure_ps"]
    if chaos["fault_ps"] <= warmup:
        errors.append((f"{where}chaos.fault_ps",
                       f"fault at {chaos['fault_ps']} ps starts before "
                       f"warmup ends ({warmup} ps); recovery would be "
                       f"measured against a cold fabric"))
    if chaos["fault_ps"] + chaos["duration_ps"] >= horizon:
        errors.append((f"{where}chaos.fault_ps",
                       f"fault window [{chaos['fault_ps']}, "
                       f"{chaos['fault_ps'] + chaos['duration_ps']}] ps "
                       f"must end inside the horizon ({horizon} ps); "
                       f"raise timing.measure_ps"))


def compile_scenario(scenario: Scenario,
                     seeds: Optional[Sequence[int]] = None) -> CompiledMatrix:
    """Expand sweep axes × seeds into an ordered, validated cell list.

    ``seeds`` overrides the spec's seed list (the ``--seeds`` flag).  Raises
    :class:`SpecError` if any full axis combination is invalid or a named
    chaos fault misses the measurement window.
    """
    seed_list = tuple(seeds) if seeds else scenario.seeds
    if not seed_list:
        raise SpecError(("seeds", "need at least one seed"),
                        source=scenario.name)
    axes = scenario.sweep
    base = scenario.to_dict()
    base.pop("sweep", None)
    errors: List[Tuple[str, str]] = []
    variants: List[Tuple[Tuple[Tuple[str, Any], ...], Scenario]] = []
    if axes:
        names = [axis for axis, _values in axes]
        for combo in itertools.product(*(values for _axis, values in axes)):
            coords = tuple(zip(names, combo))
            where = ",".join(f"{_short(a)}={v}" for a, v in coords)
            trial = _deep(base)
            for axis, value in coords:
                _set(trial, axis, value)
            try:
                variant = Scenario.from_dict(trial, source=scenario.name,
                                             base_dir=scenario.base_dir)
            except SpecError as exc:
                errors.extend((f"[{where}] {fld}", msg)
                              for fld, msg in exc.errors)
                continue
            _check_chaos_window(variant, f"[{where}] ", errors)
            variants.append((coords, variant))
    else:
        _check_chaos_window(scenario, "", errors)
        variants.append(((), scenario))
    if errors:
        raise SpecError(errors, source=scenario.name)

    out: List[Cell] = []
    for coords, variant in variants:
        for seed in seed_list:
            parts = [f"{_short(a)}={v}" for a, v in coords]
            parts.append(f"seed={seed}")
            label = f"{scenario.name}[{' '.join(parts)}]"
            # Relabel the task with the cell label so progress, telemetry
            # and trace spans name cells by their coordinates rather than
            # by the shared cell function.  Labels are display-only:
            # ``TaskSpec.identity`` (and thus cache keys) ignore them.
            task = replace(_lower_cell(variant, seed), label=label)
            out.append(Cell(index=len(out), label=label,
                            axes=coords + (("seed", seed),), seed=seed,
                            task=task))
    return CompiledMatrix(scenario, tuple(out))


def _deep(data):
    if isinstance(data, dict):
        return {k: _deep(v) for k, v in data.items()}
    if isinstance(data, list):
        return [_deep(v) for v in data]
    return data


def _set(data: dict, path: str, value) -> None:
    from repro.scenarios.schema import set_by_path
    set_by_path(data, path, value)


def cell_rows(matrix: CompiledMatrix, results) -> List[dict]:
    """Join runtime results back onto cells as flat report rows.

    ``results`` is the ordered :func:`repro.runtime.run_tasks` output for
    ``matrix.plan()``.  Failed cells keep their coordinates with an
    ``error`` string instead of metrics.
    """
    rows: List[dict] = []
    for cell, res in zip(matrix.cells, results):
        row: Dict[str, Any] = {"cell": cell.label}
        for axis, value in cell.axes:
            row[_short(axis)] = value
        if res.error is not None:
            row["error"] = str(res.error)
        elif isinstance(res.value, dict):
            for key, value in res.value.items():
                if key not in row:
                    row[key] = value
        else:
            row["value"] = res.value
        row["cached"] = res.cached
        row["wall_s"] = res.wall_s
        rows.append(row)
    return rows


__all__ = ["Cell", "CompiledMatrix", "compile_scenario", "cell_rows",
           "match_cell", "get_by_path"]

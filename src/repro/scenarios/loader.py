"""Loading, dumping, and linting scenario specs (YAML or JSON).

Entry points::

    load("scenarios/fig15_flow_scalability.yaml")   # path -> Scenario
    loads(text, fmt="yaml")                          # text -> Scenario
    dumps(scenario, fmt="json")                      # canonical round-trip
    lint(path)                                       # -> [SpecError fields]
    resolve_spec("smoke_mini")                       # library name -> path

YAML is optional: the parser is imported lazily and a missing PyYAML turns
into a :class:`SpecError` telling the user to use JSON, not an ImportError
mid-command.  Parse failures (bad YAML/JSON syntax) are reported with the
line number the parser blames, so ``repro scenarios validate`` output is
line-addressed for syntax and field-addressed for semantics.

The bundled spec library lives in the repository's top-level ``scenarios/``
directory; ``REPRO_SCENARIOS_DIR`` overrides the location (useful for
private spec collections).
"""

from __future__ import annotations

import json
import os
import pathlib
from typing import Iterator, List, Optional, Tuple

from repro.scenarios.schema import Scenario, SpecError

_SPEC_SUFFIXES = (".yaml", ".yml", ".json")


def _yaml():
    try:
        import yaml
    except ImportError:
        return None
    return yaml


def parse_text(text: str, fmt: str = "yaml", source: str = "<string>"):
    """Parse spec text to plain data; raises SpecError on syntax errors."""
    if fmt == "json":
        try:
            return json.loads(text)
        except json.JSONDecodeError as exc:
            raise SpecError(("<syntax>", f"not valid JSON: {exc.msg}"),
                            source=source, line=exc.lineno) from exc
    yaml = _yaml()
    if yaml is None:
        raise SpecError(("<syntax>",
                         "PyYAML is not installed; write the spec as JSON "
                         "(.json) or install pyyaml"), source=source)
    try:
        return yaml.safe_load(text)
    except yaml.YAMLError as exc:
        mark = getattr(exc, "problem_mark", None)
        line = (mark.line + 1) if mark is not None else None
        problem = getattr(exc, "problem", None) or str(exc)
        raise SpecError(("<syntax>", f"not valid YAML: {problem}"),
                        source=source, line=line) from exc


def loads(text: str, fmt: str = "yaml", source: str = "<string>",
          base_dir: Optional[pathlib.Path] = None) -> Scenario:
    """Parse and validate spec text."""
    data = parse_text(text, fmt=fmt, source=source)
    return Scenario.from_dict(data, source=source, base_dir=base_dir)


def load(path) -> Scenario:
    """Load and validate a spec file (.yaml/.yml/.json)."""
    path = pathlib.Path(path)
    fmt = "json" if path.suffix == ".json" else "yaml"
    try:
        text = path.read_text()
    except OSError as exc:
        raise SpecError(("<file>", f"cannot read spec: {exc}"),
                        source=str(path)) from exc
    return loads(text, fmt=fmt, source=str(path), base_dir=path.parent)


def dumps(scenario: Scenario, fmt: str = "yaml") -> str:
    """Serialize the canonical form; ``loads(dumps(s)) == s``."""
    data = scenario.to_dict()
    if fmt == "json":
        return json.dumps(data, indent=2) + "\n"
    yaml = _yaml()
    if yaml is None:
        raise SpecError(("<syntax>", "PyYAML is not installed; "
                                     "dump as JSON instead"))
    return yaml.safe_dump(data, sort_keys=False, default_flow_style=False)


def lint(path) -> List[Tuple[str, str]]:
    """All problems in a spec file as ``(field, message)`` pairs.

    An empty list means the spec is valid (it loads *and* compiles).
    """
    from repro.scenarios.compiler import compile_scenario

    try:
        scenario = load(path)
        compile_scenario(scenario)
    except SpecError as exc:
        return list(exc.errors)
    return []


# -- bundled spec library -----------------------------------------------------

def library_dir() -> pathlib.Path:
    """The bundled spec directory (``REPRO_SCENARIOS_DIR`` overrides)."""
    env = os.environ.get("REPRO_SCENARIOS_DIR")
    if env:
        return pathlib.Path(env)
    # src/repro/scenarios/loader.py -> repo root is three levels up from
    # the package directory.
    return pathlib.Path(__file__).resolve().parents[3] / "scenarios"


def iter_library() -> Iterator[pathlib.Path]:
    """Bundled spec files, sorted by name."""
    root = library_dir()
    if not root.is_dir():
        return iter(())
    return iter(sorted(p for p in root.iterdir()
                       if p.suffix in _SPEC_SUFFIXES))


def resolve_spec(name_or_path: str) -> pathlib.Path:
    """A spec argument: an existing file path, or a bundled library name."""
    path = pathlib.Path(name_or_path)
    if path.exists():
        return path
    root = library_dir()
    for suffix in ("",) + _SPEC_SUFFIXES:
        candidate = root / (name_or_path + suffix)
        if candidate.exists():
            return candidate
    known = ", ".join(p.stem for p in iter_library()) or "(library empty)"
    raise SpecError(("<file>", f"no such spec file or library entry "
                               f"{name_or_path!r}; bundled: {known}"),
                    source=name_or_path)

"""The matrix report: per-cell rows, grouped aggregates, and a ranking.

A finished matrix run produces three layers:

* **rows** — one flat dict per cell (coordinates + metrics), the raw data;
* **groups** — cells aggregated along the spec's ``report.compare`` axis
  (mean over the remaining axes and seeds), the comparison the spec asks
  for;
* **ranking** — groups ordered by Borda count over the spec's
  ``report.objectives`` (each objective ranks the groups; a group's score
  is the sum of its ranks; lowest total wins).  Rank-sum is scale-free, so
  "queue in KB" and "FCT in ms" need no normalization to combine.

Serialization mirrors :mod:`repro.obs.export`: a JSONL stream with a
``meta`` header carrying :data:`REPORT_SCHEMA` first, then one record per
row/group/rank line, plus a wide CSV of the per-cell rows.  Writers take
open file handles (or paths) and never print — keeping machine-readable
output clean of whatever the surrounding environment writes to stdout is a
caller guarantee the CLI relies on.
"""

from __future__ import annotations

import json
from dataclasses import dataclass, field
from typing import Any, Dict, IO, List, Optional, Sequence, Tuple, Union

#: Schema tag written to (and checked in) every report JSONL export.
REPORT_SCHEMA = "repro.scenarios.report/v1"

_RECORD_KINDS = ("meta", "cell", "group", "rank")

#: Metrics that default to an objective direction when the spec does not
#: name any (only those present in the rows are used).
_DEFAULT_OBJECTIVES = (
    ("utilization", "max"),
    ("fairness", "max"),
    ("avg_fct_ms", "min"),
    ("p99_fct_ms", "min"),
    ("max_queue_kb", "min"),
    ("data_drops", "min"),
    ("recovery_ms", "min"),
)

#: Row keys that are coordinates/bookkeeping, never aggregated metrics.
_NON_METRIC_KEYS = ("cell", "cached", "wall_s", "error", "buckets",
                    "protocol", "workload", "topology", "flows", "seed")

#: Execution-volatile keys stripped by the writers' ``stable`` mode: they
#: describe *how* a run executed (cache luck, wall time), not what it
#: measured, so they differ between an interrupted+resumed campaign and an
#: uninterrupted one even though every result row is identical.  ``repro
#: resume`` promises byte-identical reports; stripping these keys (implied
#: whenever a run journal is active) is what makes that promise literal.
_VOLATILE_KEYS = ("cached", "wall_s")


def _stable_dict(record: dict) -> dict:
    return {k: v for k, v in record.items() if k not in _VOLATILE_KEYS}


@dataclass
class MatrixReport:
    """Everything a matrix run learned, ready to print or export."""

    scenario: str
    compare: str
    objectives: Dict[str, str]
    rows: List[dict]
    groups: List[dict] = field(default_factory=list)
    #: ``(group_key, total_rank_score)`` pairs, best (lowest score) first.
    ranking: List[Tuple[str, float]] = field(default_factory=list)
    meta: Dict[str, Any] = field(default_factory=dict)


def _short(axis: str) -> str:
    return axis.rsplit(".", 1)[-1]


def _is_number(value: Any) -> bool:
    return isinstance(value, (int, float)) and not isinstance(value, bool)


def _metric_keys(rows: List[dict]) -> List[str]:
    keys: List[str] = []
    for row in rows:
        for key, value in row.items():
            if key in _NON_METRIC_KEYS or key in keys:
                continue
            if _is_number(value):
                keys.append(key)
    return keys


def build_report(scenario_name: str, rows: List[dict],
                 compare: str = "transport.protocol",
                 objectives: Optional[Dict[str, str]] = None,
                 meta: Optional[Dict[str, Any]] = None,
                 coords: Optional[Sequence[str]] = None) -> MatrixReport:
    """Aggregate per-cell rows along ``compare`` and rank the groups.

    ``rows`` is :func:`repro.scenarios.compiler.cell_rows` output; ``coords``
    names the sweep-axis columns (they are locations, not measurements, so
    they never aggregate).  Cells that failed (carry an ``error`` key) are
    excluded from aggregates but counted in ``meta["failed"]``.  With fewer
    than two groups the ranking is trivially the group list; the report is
    still useful for its aggregates.
    """
    key = _short(compare)
    ok_rows = [r for r in rows if "error" not in r]
    failed = len(rows) - len(ok_rows)

    by_group: Dict[str, List[dict]] = {}
    for row in ok_rows:
        by_group.setdefault(str(row.get(key, "(all)")), []).append(row)

    metric_keys = _metric_keys(ok_rows)
    # The compare coordinate itself may be numeric (load, n_flows) and then
    # looks like a metric; coordinates locate a cell, they never aggregate.
    skip = {key, "seed"} | {_short(c) for c in (coords or ())}
    metric_keys = [m for m in metric_keys if m not in skip]

    groups: List[dict] = []
    for group_key in sorted(by_group):
        members = by_group[group_key]
        agg: Dict[str, Any] = {key: group_key, "cells": len(members)}
        for metric in metric_keys:
            values = [r[metric] for r in members
                      if _is_number(r.get(metric))]
            if values:
                agg[metric] = sum(values) / len(values)
        groups.append(agg)

    if objectives:
        used = {m: d for m, d in objectives.items()
                if any(m in g for g in groups)}
    else:
        used = {m: d for m, d in _DEFAULT_OBJECTIVES
                if any(m in g for g in groups)}

    scores: Dict[str, float] = {g[key]: 0.0 for g in groups}
    for metric, direction in used.items():
        scored = [g for g in groups if _is_number(g.get(metric))]
        ordered = sorted(scored, key=lambda g: g[metric],
                         reverse=(direction == "max"))
        for rank, g in enumerate(ordered):
            scores[g[key]] += rank
        # A group missing the metric entirely ranks behind every scored one.
        for g in groups:
            if g not in scored:
                scores[g[key]] += len(ordered)
    ranking = sorted(scores.items(), key=lambda kv: (kv[1], kv[0]))
    for position, (group_key, score) in enumerate(ranking, 1):
        for g in groups:
            if g[key] == group_key:
                g["rank"] = position
                g["score"] = score
    groups.sort(key=lambda g: g.get("rank", 0))

    info = dict(meta or {})
    info.setdefault("cells", len(rows))
    info["failed"] = failed
    return MatrixReport(scenario=scenario_name, compare=compare,
                        objectives=used, rows=rows, groups=groups,
                        ranking=ranking, meta=info)


# -- terminal rendering -------------------------------------------------------

def format_report(report: MatrixReport, float_fmt: str = "{:.4g}") -> str:
    """The ranked comparison as an aligned text table."""
    from repro.experiments.runner import ExperimentResult, format_table

    key = _short(report.compare)
    columns = ["rank", key, "cells"]
    for g in report.groups:
        for col in g:
            if col not in columns and col not in ("score",):
                columns.append(col)
    table = format_table(ExperimentResult(
        name=f"{report.scenario} · ranked by {key}",
        columns=columns, rows=report.groups), float_fmt=float_fmt)
    lines = [table]
    if report.objectives:
        objs = ", ".join(f"{m}:{d}" for m, d in report.objectives.items())
        lines.append(f"objectives: {objs} (rank-sum, lower is better)")
    cells = report.meta.get("cells", len(report.rows))
    cached = report.meta.get("cached")
    extra = f"cells: {cells}"
    if cached is not None:
        extra += f"  cached: {cached}"
    if report.meta.get("failed"):
        extra += f"  FAILED: {report.meta['failed']}"
    lines.append(extra)
    return "\n".join(lines)


# -- JSONL / CSV export -------------------------------------------------------

def _handle(dest: Union[str, IO[str]], mode: str = "w"):
    if hasattr(dest, "write"):
        return dest, False
    return open(dest, mode), True


def write_report_jsonl(dest: Union[str, IO[str]],
                       report: MatrixReport, stable: bool = False) -> int:
    """One JSON object per line: meta header, cells, groups, ranking.

    ``dest`` may be a path or an open text handle; nothing is ever written
    to stdout, so JSONL report mode stays machine-clean regardless of what
    the hosting environment prints.  ``stable=True`` drops the
    execution-volatile keys (:data:`_VOLATILE_KEYS`) from the meta header
    and every cell row so a resumed run's export compares byte-for-byte
    against the uninterrupted baseline.
    """
    fh, owned = _handle(dest)
    clean = _stable_dict if stable else (lambda r: r)
    try:
        lines = 0
        fh.write(json.dumps({
            "record": "meta", "schema": REPORT_SCHEMA,
            "scenario": report.scenario, "compare": report.compare,
            "objectives": report.objectives, **clean(report.meta),
        }) + "\n")
        lines += 1
        for row in report.rows:
            fh.write(json.dumps({"record": "cell", **clean(row)}) + "\n")
            lines += 1
        for g in report.groups:
            fh.write(json.dumps({"record": "group", **g}) + "\n")
            lines += 1
        for position, (group_key, score) in enumerate(report.ranking, 1):
            fh.write(json.dumps({"record": "rank", "rank": position,
                                 "group": group_key, "score": score}) + "\n")
            lines += 1
        return lines
    finally:
        if owned:
            fh.close()


def load_report_jsonl(path) -> MatrixReport:
    """Reassemble a :func:`write_report_jsonl` export."""
    rows: List[dict] = []
    groups: List[dict] = []
    ranking: List[Tuple[str, float]] = []
    meta: Dict[str, Any] = {}
    scenario = compare = ""
    objectives: Dict[str, str] = {}
    with open(path) as fh:
        for line in fh:
            line = line.strip()
            if not line:
                continue
            rec = json.loads(line)
            kind = rec.pop("record", None)
            if kind == "meta":
                scenario = rec.pop("scenario", "")
                compare = rec.pop("compare", "")
                objectives = rec.pop("objectives", {})
                rec.pop("schema", None)
                meta = rec
            elif kind == "cell":
                rows.append(rec)
            elif kind == "group":
                groups.append(rec)
            elif kind == "rank":
                ranking.append((rec["group"], rec["score"]))
    return MatrixReport(scenario=scenario, compare=compare,
                        objectives=objectives, rows=rows, groups=groups,
                        ranking=ranking, meta=meta)


def validate_report_jsonl(path) -> dict:
    """Schema-check a report export; raises ``ValueError`` on violations.

    Returns ``{"lines": n, "records": {kind: count}}`` (the shape CI's
    matrix-smoke job asserts on, mirroring ``repro.obs.export``).
    """
    counts: Dict[str, int] = {}
    lines = 0
    ranks_seen: List[int] = []
    with open(path) as fh:
        for lineno, line in enumerate(fh, 1):
            line = line.strip()
            if not line:
                continue
            lines += 1
            try:
                rec = json.loads(line)
            except json.JSONDecodeError as exc:
                raise ValueError(f"{path}:{lineno}: not JSON: {exc}") from exc
            kind = rec.get("record")
            if kind not in _RECORD_KINDS:
                raise ValueError(f"{path}:{lineno}: unknown record {kind!r}")
            counts[kind] = counts.get(kind, 0) + 1
            if lineno == 1 and (kind != "meta"
                                or rec.get("schema") != REPORT_SCHEMA):
                raise ValueError(
                    f"{path}:1: missing meta/schema header ({REPORT_SCHEMA})")
            if kind == "cell" and not isinstance(rec.get("cell"), str):
                raise ValueError(f"{path}:{lineno}: cell needs a label")
            if kind == "rank":
                if not isinstance(rec.get("rank"), int) or rec["rank"] < 1:
                    raise ValueError(f"{path}:{lineno}: bad rank")
                ranks_seen.append(rec["rank"])
    if counts.get("meta", 0) != 1:
        raise ValueError(f"{path}: expected exactly one meta record")
    if ranks_seen != sorted(ranks_seen) or \
            ranks_seen != list(range(1, len(ranks_seen) + 1)):
        raise ValueError(f"{path}: rank records must be 1..N in order")
    return {"lines": lines, "records": counts}


def write_report_csv(dest: Union[str, IO[str]],
                     report: MatrixReport, stable: bool = False) -> int:
    """Wide CSV of the per-cell rows (union of keys, spec order).

    ``stable=True`` drops the execution-volatile columns (see
    :func:`write_report_jsonl`).
    """
    rows = [_stable_dict(r) for r in report.rows] if stable else report.rows
    columns: List[str] = []
    for row in rows:
        for key in row:
            if key not in columns and key != "buckets":
                columns.append(key)
    fh, owned = _handle(dest)
    try:
        fh.write(",".join(columns) + "\n")
        n = 0
        for row in rows:
            cells = []
            for col in columns:
                value = row.get(col, "")
                text = "" if value is None else str(value)
                if "," in text or '"' in text:
                    text = '"' + text.replace('"', '""') + '"'
                cells.append(text)
            fh.write(",".join(cells) + "\n")
            n += 1
        return n
    finally:
        if owned:
            fh.close()


__all__ = ["REPORT_SCHEMA", "MatrixReport", "build_report", "format_report",
           "write_report_jsonl", "load_report_jsonl", "validate_report_jsonl",
           "write_report_csv"]

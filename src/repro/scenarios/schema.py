"""The declarative scenario schema: what a spec may say and what it means.

A *scenario* is plain data — ``topology × workload × transport × chaos ×
timing`` plus optional ``sweep`` axes — validated here into a normalized
:class:`Scenario`.  Validation is eager and total: every error carries the
field path that caused it (``workload.kind``, ``sweep.transport.protocol[2]``)
and all errors in a spec are collected before :class:`SpecError` is raised,
so ``repro scenarios validate`` can report everything at once.

The schema is versioned (:data:`SCHEMA`); a spec naming any other version is
rejected rather than half-interpreted.  ``Scenario.to_dict`` emits the fully
normalized form (defaults filled, sections ordered), and
``Scenario.from_dict(s.to_dict()) == s`` — the round-trip the test suite
pins.

Vocabularies are imported from the subsystems that own them: transports from
:data:`repro.experiments.runner.PROTOCOLS`, workload distributions from
:data:`repro.workloads.WORKLOADS`, named fault scenarios from
:data:`repro.chaos.scenarios.SCENARIOS` — a new transport or chaos scenario
becomes sweepable with no schema change.
"""

from __future__ import annotations

import pathlib
from dataclasses import dataclass, field
from typing import Any, Dict, List, Optional, Tuple

from repro.sim.units import GBPS, MS, SEC, US

#: The one schema version this loader understands.
SCHEMA = "repro.scenarios/v1"

#: Topology families a spec may name, with the extra ``params`` each allows.
TOPOLOGY_KINDS: Dict[str, Tuple[str, ...]] = {
    "dumbbell": (),
    "single_switch": (),
    "parking_lot": (),
    "multi_bottleneck": (),
    "fat_tree": ("k",),
    "clos": ("core_rate_bps",),
}

#: Workload kinds.  ``persistent`` = long-running pairs on a fixed topology
#: (Fig 13/15/16 style); ``poisson`` = Table-2 arrivals on the scaled Clos
#: (Fig 18-21 / Table 3 style).
WORKLOAD_KINDS = ("persistent", "poisson")

#: Engine backends a spec may select.  ``packet`` is the event-driven
#: simulator (ground truth); ``fluid`` is the discrete-time rate-evolution
#: model (:mod:`repro.sim.fluid`) — 10×+ faster, valid only where no
#: per-packet feature is needed (see :func:`fluid_blockers`).
BACKENDS = ("packet", "fluid")

#: ExpressPass parameter profiles a spec may select (resolved inside the
#: cell function so specs stay pure data).
EP_PROFILES = ("default", "realistic")

#: Dotted paths a ``sweep:`` section may vary.  ``seeds`` is an implicit
#: final axis and must not be listed here.
SWEEP_AXES = (
    "backend",
    "transport.protocol",
    "transport.ep_profile",
    "workload.n_flows",
    "workload.load",
    "workload.distribution",
    "workload.size_cap_bytes",
    "topology.rate_bps",
    "topology.prop_delay_ps",
    "topology.params.k",
    "topology.params.core_rate_bps",
    "timing.warmup_ps",
    "timing.measure_ps",
    "timing.bin_ps",
    "timing.drain_ps",
    "chaos.scenario",
    "chaos.fault_ps",
    "chaos.duration_ps",
)

_TOP_KEYS = ("schema", "name", "description", "tags", "backend", "topology",
             "workload", "transport", "timing", "chaos", "seeds", "sweep",
             "report")

#: ``shards`` is execution policy, not science: the compiler never lowers
#: it into cell kwargs (sharded runs are bit-identical to serial, so it
#: must not perturb task fingerprints or cache keys) and it is not a sweep
#: axis; the matrix runner reads it into the runtime config instead.
_TIMING_KEYS = {
    "persistent": ("warmup_ps", "measure_ps", "bin_ps", "shards"),
    "poisson": ("drain_ps",),
}

_TIMING_DEFAULTS = {
    "warmup_ps": 50 * MS,
    "measure_ps": 50 * MS,
    "bin_ps": 500 * US,
    "drain_ps": 1 * SEC,
    "shards": 1,
}


class SpecError(ValueError):
    """One or more field-addressed validation failures in a spec.

    ``errors`` is a list of ``(field_path, message)`` pairs; ``source`` names
    the file (or ``<spec>`` for in-memory dicts); ``line`` is set for parse
    errors where the underlying parser reports one.
    """

    def __init__(self, errors, source: str = "<spec>",
                 line: Optional[int] = None):
        if isinstance(errors, tuple):
            errors = [errors]
        self.errors: List[Tuple[str, str]] = list(errors)
        self.source = source
        self.line = line
        where = source if line is None else f"{source}:{line}"
        first_field, first_msg = self.errors[0]
        suffix = (f" (+{len(self.errors) - 1} more error(s))"
                  if len(self.errors) > 1 else "")
        super().__init__(f"{where}: {first_field}: {first_msg}{suffix}")

    def render(self) -> str:
        """All errors, one per line, ``source: field: message``."""
        where = self.source if self.line is None else f"{self.source}:{self.line}"
        return "\n".join(f"{where}: {fld}: {msg}" for fld, msg in self.errors)


@dataclass
class Scenario:
    """A validated, normalized scenario.  Sections are plain dicts."""

    name: str
    description: str = ""
    tags: Tuple[str, ...] = ()
    backend: str = "packet"
    topology: Dict[str, Any] = field(default_factory=dict)
    workload: Dict[str, Any] = field(default_factory=dict)
    transport: Dict[str, Any] = field(default_factory=dict)
    timing: Dict[str, Any] = field(default_factory=dict)
    chaos: Optional[Dict[str, Any]] = None
    seeds: Tuple[int, ...] = (1,)
    #: Ordered ``(axis, values)`` pairs — declaration order is cell order.
    sweep: Tuple[Tuple[str, Tuple[Any, ...]], ...] = ()
    report: Dict[str, Any] = field(default_factory=dict)
    #: Directory relative chaos plan paths resolve against (set by the
    #: loader; not part of the spec's identity).
    base_dir: Optional[pathlib.Path] = field(default=None, compare=False)

    def to_dict(self) -> dict:
        """The canonical, fully-normalized spec (round-trips via from_dict)."""
        out: Dict[str, Any] = {
            "schema": SCHEMA,
            "name": self.name,
            "description": self.description,
            "tags": list(self.tags),
            "backend": self.backend,
            "topology": dict(self.topology),
            "workload": dict(self.workload),
            "transport": dict(self.transport),
            "timing": dict(self.timing),
            "seeds": list(self.seeds),
            "sweep": {axis: list(values) for axis, values in self.sweep},
            "report": dict(self.report),
        }
        if self.chaos is not None:
            out["chaos"] = dict(self.chaos)
        return out

    @property
    def cell_count(self) -> int:
        n = len(self.seeds)
        for _axis, values in self.sweep:
            n *= len(values)
        return n

    @classmethod
    def from_dict(cls, data: Any, source: str = "<spec>",
                  base_dir: Optional[pathlib.Path] = None) -> "Scenario":
        """Validate ``data`` and build the normalized scenario.

        Raises :class:`SpecError` carrying *every* problem found.
        """
        return _validate(data, source, base_dir)


# -- validation ---------------------------------------------------------------

class _Check:
    """Error accumulator with field-path context."""

    def __init__(self, source: str):
        self.source = source
        self.errors: List[Tuple[str, str]] = []

    def fail(self, fld: str, msg: str) -> None:
        self.errors.append((fld, msg))

    def raise_if_failed(self) -> None:
        if self.errors:
            raise SpecError(self.errors, source=self.source)


def _require_map(chk: _Check, data: Any, fld: str) -> dict:
    if data is None:
        return {}
    if not isinstance(data, dict):
        chk.fail(fld, f"expected a mapping, got {type(data).__name__}")
        return {}
    return data


def _pos_int(chk: _Check, value: Any, fld: str, default: int) -> int:
    if value is None:
        return default
    if isinstance(value, bool) or not isinstance(value, int):
        chk.fail(fld, f"expected an integer, got {value!r}")
        return default
    if value <= 0:
        chk.fail(fld, f"must be positive, got {value}")
        return default
    return value


def _unknown_keys(chk: _Check, data: dict, allowed, fld: str) -> None:
    unknown = sorted(set(data) - set(allowed))
    if unknown:
        chk.fail(fld, f"unknown key(s) {unknown}; allowed: {sorted(allowed)}")


def _validate_topology(chk: _Check, data: dict) -> dict:
    topo = _require_map(chk, data.get("topology"), "topology")
    _unknown_keys(chk, topo, ("kind", "rate_bps", "prop_delay_ps", "params"),
                  "topology")
    kind = topo.get("kind", "dumbbell")
    if kind not in TOPOLOGY_KINDS:
        chk.fail("topology.kind",
                 f"unknown kind {kind!r}; choose from {sorted(TOPOLOGY_KINDS)}")
        kind = "dumbbell"
    rate = _pos_int(chk, topo.get("rate_bps"), "topology.rate_bps", 10 * GBPS)
    prop = _pos_int(chk, topo.get("prop_delay_ps"), "topology.prop_delay_ps",
                    4 * US)
    params = _require_map(chk, topo.get("params"), "topology.params")
    allowed = TOPOLOGY_KINDS[kind]
    _unknown_keys(chk, params, allowed, "topology.params")
    norm_params: Dict[str, Any] = {}
    if kind == "fat_tree":
        k = _pos_int(chk, params.get("k"), "topology.params.k", 4)
        if k % 2 or k < 2:
            chk.fail("topology.params.k",
                     f"fat tree arity must be even and >= 2, got {k}")
        norm_params["k"] = k
    if kind == "clos" and params.get("core_rate_bps") is not None:
        norm_params["core_rate_bps"] = _pos_int(
            chk, params.get("core_rate_bps"),
            "topology.params.core_rate_bps", rate)
    return {"kind": kind, "rate_bps": rate, "prop_delay_ps": prop,
            "params": norm_params}


def _validate_workload(chk: _Check, data: dict, topology: dict) -> dict:
    from repro.workloads import WORKLOADS

    wl = _require_map(chk, data.get("workload"), "workload")
    kind = wl.get("kind", "persistent")
    if kind not in WORKLOAD_KINDS:
        chk.fail("workload.kind",
                 f"unknown kind {kind!r}; choose from {sorted(WORKLOAD_KINDS)}")
        kind = "persistent"
    n_flows = _pos_int(chk, wl.get("n_flows"), "workload.n_flows",
                       4 if kind == "persistent" else 1200)
    if kind == "persistent":
        _unknown_keys(chk, wl, ("kind", "n_flows"), "workload")
        topo_kind = topology["kind"]
        if topo_kind == "clos":
            chk.fail("workload.kind",
                     "persistent workloads need a concrete topology "
                     "(dumbbell/single_switch/parking_lot/multi_bottleneck/"
                     "fat_tree); 'clos' is reserved for poisson workloads")
        if topo_kind in ("parking_lot", "multi_bottleneck") and n_flows < 2:
            chk.fail("workload.n_flows",
                     f"{topo_kind} needs >= 2 flows (one long + cross flows)")
        if topo_kind == "fat_tree":
            half = topology["params"].get("k", 4) // 2
            if n_flows > half ** 3:
                chk.fail("workload.n_flows",
                         f"k={half * 2} fat tree supports at most "
                         f"{half ** 3} inter-pod pairs, got {n_flows}")
        return {"kind": kind, "n_flows": n_flows}
    # poisson
    _unknown_keys(chk, wl, ("kind", "n_flows", "distribution", "load",
                            "size_cap_bytes"), "workload")
    if topology["kind"] != "clos":
        chk.fail("workload.kind",
                 "poisson workloads run on the oversubscribed Clos; set "
                 "topology.kind: clos")
    dist = wl.get("distribution", "web_search")
    if dist not in WORKLOADS:
        chk.fail("workload.distribution",
                 f"unknown distribution {dist!r}; "
                 f"choose from {sorted(WORKLOADS)}")
    load = wl.get("load", 0.6)
    if isinstance(load, bool) or not isinstance(load, (int, float)) \
            or not 0 < load <= 1:
        chk.fail("workload.load", f"load must be in (0, 1], got {load!r}")
        load = 0.6
    cap = wl.get("size_cap_bytes", 20_000_000)
    if cap is not None:
        cap = _pos_int(chk, cap, "workload.size_cap_bytes", 20_000_000)
    return {"kind": kind, "n_flows": n_flows, "distribution": dist,
            "load": float(load), "size_cap_bytes": cap}


def _validate_transport(chk: _Check, data: dict) -> dict:
    from repro.experiments.runner import PROTOCOLS

    tr = _require_map(chk, data.get("transport"), "transport")
    _unknown_keys(chk, tr, ("protocol", "ep_profile"), "transport")
    protocol = tr.get("protocol", "expresspass")
    if protocol not in PROTOCOLS:
        chk.fail("transport.protocol",
                 f"unknown transport {protocol!r}; "
                 f"choose from {sorted(PROTOCOLS)}")
    profile = tr.get("ep_profile", "default")
    if profile not in EP_PROFILES:
        chk.fail("transport.ep_profile",
                 f"unknown profile {profile!r}; choose from {EP_PROFILES}")
    return {"protocol": protocol, "ep_profile": profile}


def _validate_timing(chk: _Check, data: dict, workload_kind: str) -> dict:
    timing = _require_map(chk, data.get("timing"), "timing")
    allowed = _TIMING_KEYS.get(workload_kind, _TIMING_KEYS["persistent"])
    _unknown_keys(chk, timing, allowed, "timing")
    return {key: _pos_int(chk, timing.get(key), f"timing.{key}",
                          _TIMING_DEFAULTS[key])
            for key in allowed}


def _validate_chaos(chk: _Check, data: dict, topology: dict,
                    base_dir: Optional[pathlib.Path]) -> Optional[dict]:
    from repro.chaos.plan import event_from_dict
    from repro.chaos.scenarios import SCENARIOS

    raw = data.get("chaos")
    if raw is None:
        return None
    chaos = _require_map(chk, raw, "chaos")
    modes = [m for m in ("scenario", "plan", "events") if m in chaos]
    if len(modes) != 1:
        chk.fail("chaos", "exactly one of 'scenario', 'plan', or 'events' "
                          f"must be set, got {modes or 'none'}")
        return None
    if "scenario" in chaos:
        _unknown_keys(chk, chaos, ("scenario", "fault_ps", "duration_ps",
                                   "reconverge_delay_ps"), "chaos")
        name = chaos["scenario"]
        if name not in SCENARIOS:
            chk.fail("chaos.scenario",
                     f"unknown fault scenario {name!r}; "
                     f"choose from {sorted(SCENARIOS)}")
        if topology["kind"] != "fat_tree":
            chk.fail("chaos.scenario",
                     "named fault scenarios target the k=4 fat-tree fabric; "
                     "set topology.kind: fat_tree (or use inline 'events')")
        return {
            "scenario": name,
            "fault_ps": _pos_int(chk, chaos.get("fault_ps"),
                                 "chaos.fault_ps", 6 * MS),
            "duration_ps": _pos_int(chk, chaos.get("duration_ps"),
                                    "chaos.duration_ps", 4 * MS),
            "reconverge_delay_ps": _pos_int(
                chk, chaos.get("reconverge_delay_ps"),
                "chaos.reconverge_delay_ps", 200 * US),
        }
    if "plan" in chaos:
        _unknown_keys(chk, chaos, ("plan", "seed"), "chaos")
        path = chaos["plan"]
        if not isinstance(path, str) or not path:
            chk.fail("chaos.plan", f"expected a file path, got {path!r}")
        else:
            resolved = pathlib.Path(path)
            if not resolved.is_absolute() and base_dir is not None:
                resolved = base_dir / resolved
            if not resolved.exists():
                chk.fail("chaos.plan", f"fault-plan file not found: {resolved}")
        out: Dict[str, Any] = {"plan": path}
        if chaos.get("seed") is not None:
            out["seed"] = _pos_int(chk, chaos["seed"], "chaos.seed", 1)
        return out
    # inline events
    _unknown_keys(chk, chaos, ("events", "seed", "reconverge_delay_ps"),
                  "chaos")
    events = chaos["events"]
    if not isinstance(events, list) or not events:
        chk.fail("chaos.events", "expected a non-empty list of fault events")
        events = []
    normalized = []
    for i, ev in enumerate(events):
        if not isinstance(ev, dict):
            chk.fail(f"chaos.events[{i}]", "expected a mapping")
            continue
        try:
            normalized.append(event_from_dict(ev).to_dict())
        except (ValueError, TypeError) as exc:
            chk.fail(f"chaos.events[{i}]", str(exc))
    out = {"events": normalized,
           "reconverge_delay_ps": _pos_int(
               chk, chaos.get("reconverge_delay_ps"),
               "chaos.reconverge_delay_ps", 200 * US)}
    if chaos.get("seed") is not None:
        out["seed"] = _pos_int(chk, chaos["seed"], "chaos.seed", 1)
    return out


def fluid_blockers(workload: Dict[str, Any],
                   chaos: Optional[Dict[str, Any]]) -> List[str]:
    """Why the fluid backend cannot run this scenario (empty = it can).

    The fluid model has no per-packet events, so anything that *is* a
    per-packet feature blocks it: Poisson flow arrivals with FCT accounting
    (each flow's completion is a packet-level fact) and chaos fault
    injection (loss bursts, link flaps act on packets in flight).  The
    schema refuses such specs eagerly; the spec-driven test suite uses the
    same list to skip fluid compilation with a reason.
    """
    reasons = []
    if workload.get("kind") != "persistent":
        reasons.append("workload.kind: fluid models persistent rate "
                       "evolution only; poisson FCT needs per-packet events")
    if chaos is not None:
        reasons.append("chaos: fault injection acts on packets in flight; "
                       "use the packet backend")
    return reasons


def _validate_backend(chk: _Check, data: dict, workload: dict,
                      chaos: Optional[dict]) -> str:
    backend = data.get("backend", "packet")
    if backend not in BACKENDS:
        chk.fail("backend",
                 f"unknown backend {backend!r}; choose from {BACKENDS}")
        return "packet"
    if backend == "fluid":
        for reason in fluid_blockers(workload, chaos):
            fld, _, msg = reason.partition(": ")
            chk.fail(fld, f"backend 'fluid' unavailable: {msg}")
    return backend


def _validate_seeds(chk: _Check, data: dict) -> Tuple[int, ...]:
    seeds = data.get("seeds", [1])
    if isinstance(seeds, bool) or isinstance(seeds, int):
        seeds = [seeds]
    if not isinstance(seeds, (list, tuple)) or not seeds:
        chk.fail("seeds", f"expected a non-empty list of integers, "
                          f"got {seeds!r}")
        return (1,)
    out = []
    for i, s in enumerate(seeds):
        if isinstance(s, bool) or not isinstance(s, int):
            chk.fail(f"seeds[{i}]", f"expected an integer, got {s!r}")
            continue
        out.append(s)
    if len(set(out)) != len(out):
        chk.fail("seeds", f"duplicate seeds in {out}")
    return tuple(out) or (1,)


def _validate_sweep(chk: _Check, data: dict, source: str, base: dict,
                    base_dir: Optional[pathlib.Path],
                    ) -> Tuple[Tuple[str, Tuple[Any, ...]], ...]:
    sweep = _require_map(chk, data.get("sweep"), "sweep")
    axes: List[Tuple[str, Tuple[Any, ...]]] = []
    for axis, values in sweep.items():
        if axis in ("seed", "seeds"):
            chk.fail(f"sweep.{axis}",
                     "seeds are an implicit axis; set top-level 'seeds' "
                     "(or --seeds) instead")
            continue
        if axis not in SWEEP_AXES:
            chk.fail(f"sweep.{axis}",
                     f"not a sweepable field; choose from {list(SWEEP_AXES)}")
            continue
        if not isinstance(values, (list, tuple)) or not values:
            chk.fail(f"sweep.{axis}",
                     f"expected a non-empty list of values, got {values!r}")
            continue
        # Every axis value must produce a valid scenario on its own; the
        # compiler re-validates full combinations, but a bad value should be
        # a load-time lint, not a compile-time surprise.
        for i, value in enumerate(values):
            trial = _deep_copy(base)
            trial.pop("sweep", None)
            set_by_path(trial, axis, value)
            try:
                _validate(trial, source, base_dir=base_dir)
            except SpecError as exc:
                for _fld, msg in exc.errors:
                    chk.fail(f"sweep.{axis}[{i}]", msg)
        axes.append((axis, tuple(values)))
    return tuple(axes)


def _validate_report(chk: _Check, data: dict,
                     sweep: Tuple[Tuple[str, Tuple[Any, ...]], ...]) -> dict:
    report = _require_map(chk, data.get("report"), "report")
    _unknown_keys(chk, report, ("compare", "objectives"), "report")
    compare = report.get("compare", "transport.protocol")
    if compare != "seed" and compare not in SWEEP_AXES:
        chk.fail("report.compare",
                 f"not a comparable axis: {compare!r}; choose from "
                 f"{list(SWEEP_AXES) + ['seed']}")
        compare = "transport.protocol"
    objectives = _require_map(chk, report.get("objectives"),
                              "report.objectives")
    norm_obj = {}
    for metric, direction in objectives.items():
        if direction not in ("min", "max"):
            chk.fail(f"report.objectives.{metric}",
                     f"direction must be 'min' or 'max', got {direction!r}")
            continue
        norm_obj[str(metric)] = direction
    return {"compare": compare, "objectives": norm_obj}


def _deep_copy(data):
    if isinstance(data, dict):
        return {k: _deep_copy(v) for k, v in data.items()}
    if isinstance(data, (list, tuple)):
        return [_deep_copy(v) for v in data]
    return data


def set_by_path(data: dict, path: str, value) -> None:
    """Set ``data["a"]["b"] = value`` for ``path == "a.b"``, creating
    intermediate mappings as needed."""
    parts = path.split(".")
    node = data
    for part in parts[:-1]:
        nxt = node.get(part)
        if not isinstance(nxt, dict):
            nxt = {}
            node[part] = nxt
        node = nxt
    node[parts[-1]] = value


def get_by_path(data: dict, path: str, default=None):
    node = data
    for part in path.split("."):
        if not isinstance(node, dict) or part not in node:
            return default
        node = node[part]
    return node


def _validate(data: Any, source: str,
              base_dir: Optional[pathlib.Path]) -> Scenario:
    chk = _Check(source)
    if not isinstance(data, dict):
        raise SpecError(("<root>", f"a scenario spec must be a mapping, "
                                   f"got {type(data).__name__}"), source)
    schema = data.get("schema")
    if schema != SCHEMA:
        chk.fail("schema",
                 f"expected {SCHEMA!r}, got {schema!r}"
                 + ("" if schema else " (add `schema: repro.scenarios/v1`)"))
    name = data.get("name")
    if not isinstance(name, str) or not name:
        chk.fail("name", "every scenario needs a non-empty string name")
        name = "unnamed"
    description = data.get("description", "")
    if not isinstance(description, str):
        chk.fail("description", "expected a string")
        description = ""
    tags = data.get("tags", [])
    if not isinstance(tags, (list, tuple)) or \
            any(not isinstance(t, str) for t in tags):
        chk.fail("tags", "expected a list of strings")
        tags = []
    _unknown_keys(chk, data, _TOP_KEYS, "<root>")

    topology = _validate_topology(chk, data)
    workload = _validate_workload(chk, data, topology)
    transport = _validate_transport(chk, data)
    timing = _validate_timing(chk, data, workload["kind"])
    chaos = _validate_chaos(chk, data, topology, base_dir)
    backend = _validate_backend(chk, data, workload, chaos)
    seeds = _validate_seeds(chk, data)
    sweep = _validate_sweep(chk, data, source, data, base_dir)
    report = _validate_report(chk, data, sweep)
    chk.raise_if_failed()
    return Scenario(name=name, description=description, tags=tuple(tags),
                    backend=backend, topology=topology, workload=workload,
                    transport=transport, timing=timing, chaos=chaos,
                    seeds=seeds, sweep=sweep, report=report,
                    base_dir=base_dir)

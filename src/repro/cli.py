"""Command-line interface: reproduce any of the paper's experiments.

Usage::

    python -m repro list
    python -m repro run fig10
    python -m repro run fig15 --set flow_counts=4,16 --set measure_ps=20000000000
    python -m repro run table1 --json

``--set key=value`` overrides a keyword argument of the experiment's
``run`` function; values are parsed as ints, floats, comma-separated tuples,
or protocol-name tuples as appropriate (best effort: int, then float, then
comma-split, then string).
"""

from __future__ import annotations

import argparse
import json
import sys
from typing import Callable, Dict

from repro.experiments import format_table


def _registry() -> Dict[str, Callable]:
    from repro.experiments import (
        fig01_queue_buildup,
        fig02_naive_convergence,
        fig06_jitter,
        fig08_initial_rate,
        fig09_credit_queue,
        fig10_parking_lot,
        fig11_multibottleneck,
        fig12_steady_state,
        fig13_convergence_behavior,
        fig14_host_jitter,
        fig15_flow_scalability,
        fig16_link_speed_convergence,
        fig17_shuffle,
        fig18_param_sensitivity,
        fig19_realistic_fct,
        fig20_credit_waste,
        fig21_speedup,
        table1_buffer_bounds,
        table3_queue_occupancy,
        ablations,
        incast_closed_loop,
        rdma_comparison,
        summary,
    )

    return {
        "summary": summary.run,
        "rdma": rdma_comparison.run,
        "incast": incast_closed_loop.run,
        "ablate-symmetry": ablations.run_symmetry_ablation,
        "ablate-burst": ablations.run_opportunistic_ablation,
        "fig1": fig01_queue_buildup.run,
        "fig2": fig02_naive_convergence.run,
        "fig5": table1_buffer_bounds.run_fig5,
        "fig6": fig06_jitter.run,
        "fig8": fig08_initial_rate.run,
        "fig9": fig09_credit_queue.run,
        "fig10": fig10_parking_lot.run,
        "fig11": fig11_multibottleneck.run,
        "fig12": fig12_steady_state.run,
        "fig13": fig13_convergence_behavior.run,
        "fig14a": fig14_host_jitter.run_host_delay,
        "fig14b": fig14_host_jitter.run_inter_credit_gap,
        "fig15": fig15_flow_scalability.run,
        "fig16": fig16_link_speed_convergence.run,
        "fig17": fig17_shuffle.run,
        "fig18": fig18_param_sensitivity.run,
        "fig19": fig19_realistic_fct.run,
        "fig20": fig20_credit_waste.run,
        "fig21": fig21_speedup.run,
        "table1": table1_buffer_bounds.run,
        "table3": table3_queue_occupancy.run,
    }


def _parse_value(raw: str):
    """Best-effort literal parsing for --set values."""
    if "," in raw:
        return tuple(_parse_value(part) for part in raw.split(",") if part)
    for cast in (int, float):
        try:
            return cast(raw)
        except ValueError:
            continue
    if raw.lower() in ("true", "false"):
        return raw.lower() == "true"
    return raw


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(
        prog="repro",
        description="Reproduce ExpressPass (SIGCOMM 2017) experiments.",
    )
    sub = parser.add_subparsers(dest="command", required=True)
    sub.add_parser("list", help="list available experiments")
    runp = sub.add_parser("run", help="run one experiment and print its table")
    runp.add_argument("experiment", help="experiment id, e.g. fig10 or table1")
    runp.add_argument("--set", action="append", default=[], metavar="KEY=VALUE",
                      help="override a run(...) keyword argument")
    runp.add_argument("--json", action="store_true",
                      help="emit rows as JSON instead of a table")
    args = parser.parse_args(argv)

    registry = _registry()
    if args.command == "list":
        for name in sorted(registry, key=lambda n: (len(n), n)):
            doc = (sys.modules[registry[name].__module__].__doc__ or "")
            summary = doc.strip().splitlines()[0] if doc else ""
            print(f"{name:8s} {summary}")
        return 0

    if args.experiment not in registry:
        parser.error(f"unknown experiment {args.experiment!r}; "
                     f"try: {', '.join(sorted(registry))}")
    overrides = {}
    for item in args.set:
        if "=" not in item:
            parser.error(f"--set expects KEY=VALUE, got {item!r}")
        key, _, raw = item.partition("=")
        overrides[key] = _parse_value(raw)

    result = registry[args.experiment](**overrides)
    if args.json:
        print(json.dumps({"name": result.name, "rows": result.rows,
                          "meta": result.meta}, indent=2, default=str))
    else:
        print(format_table(result))
    return 0


if __name__ == "__main__":  # pragma: no cover - exercised via __main__
    sys.exit(main())

"""Command-line interface: reproduce any of the paper's experiments.

Usage::

    python -m repro list
    python -m repro run fig10
    python -m repro run fig15 --set flow_counts=4,16 --set measure_ps=20000000000
    python -m repro run fig15 --parallel 4            # sweep on 4 workers
    python -m repro run fig15 --seed 3 --no-cache     # replicate across seeds
    python -m repro run table1 --json
    python -m repro profile fig10                     # where do events go?
    python -m repro run fig15 --profile --parallel 4  # profile the workers too
    python -m repro run fig13 --metrics               # obs summary on stderr
    python -m repro obs fig13 --jsonl run.jsonl --csv run.csv --dashboard
    python -m repro run fig10 --trace trace.jsonl     # where did the time go?
    python -m repro trace summarize trace.jsonl
    python -m repro cache stats
    python -m repro cache clear

``--set key=value`` overrides a keyword argument of the experiment's
``run`` function; values are parsed as ints, floats, comma-separated tuples,
or protocol-name tuples as appropriate (best effort: int, then float, then
comma-split, then string).

Sweep execution policy — worker count, result cache, retry budget, per-task
timeout, telemetry sink — is handled by :mod:`repro.runtime`; the ``run``
flags below override the ``REPRO_*`` environment defaults for one
invocation.  Runs of sweep-based experiments are memoised: an immediate
rerun is served from the on-disk cache (disable with ``--no-cache``).
"""

from __future__ import annotations

import argparse
import contextlib
import inspect
import json
import os
import pathlib
import sys
from typing import Callable, Dict

from repro.experiments import format_table
from repro import runtime
from repro.resilience import journal as run_journal
from repro.resilience.signals import (
    EXIT_INTERRUPTED,
    graceful_shutdown,
    shutdown_requested,
)


def _registry() -> Dict[str, Callable]:
    from repro.experiments import (
        fig01_queue_buildup,
        fig02_naive_convergence,
        fig06_jitter,
        fig08_initial_rate,
        fig09_credit_queue,
        fig10_parking_lot,
        fig11_multibottleneck,
        fig12_steady_state,
        fig13_convergence_behavior,
        fig14_host_jitter,
        fig15_flow_scalability,
        fig16_link_speed_convergence,
        fig17_shuffle,
        fig18_param_sensitivity,
        fig19_realistic_fct,
        fig20_credit_waste,
        fig21_speedup,
        table1_buffer_bounds,
        table3_queue_occupancy,
        ablations,
        incast_closed_loop,
        rdma_comparison,
        summary,
    )

    return {
        "summary": summary.run,
        "rdma": rdma_comparison.run,
        "incast": incast_closed_loop.run,
        "ablate-symmetry": ablations.run_symmetry_ablation,
        "ablate-burst": ablations.run_opportunistic_ablation,
        "fig1": fig01_queue_buildup.run,
        "fig2": fig02_naive_convergence.run,
        "fig5": table1_buffer_bounds.run_fig5,
        "fig6": fig06_jitter.run,
        "fig8": fig08_initial_rate.run,
        "fig9": fig09_credit_queue.run,
        "fig10": fig10_parking_lot.run,
        "fig11": fig11_multibottleneck.run,
        "fig12": fig12_steady_state.run,
        "fig13": fig13_convergence_behavior.run,
        "fig14a": fig14_host_jitter.run_host_delay,
        "fig14b": fig14_host_jitter.run_inter_credit_gap,
        "fig15": fig15_flow_scalability.run,
        "fig16": fig16_link_speed_convergence.run,
        "fig17": fig17_shuffle.run,
        "fig18": fig18_param_sensitivity.run,
        "fig19": fig19_realistic_fct.run,
        "fig20": fig20_credit_waste.run,
        "fig21": fig21_speedup.run,
        "table1": table1_buffer_bounds.run,
        "table3": table3_queue_occupancy.run,
    }


def _parse_value(raw: str):
    """Best-effort literal parsing for --set values."""
    if "," in raw:
        return tuple(_parse_value(part) for part in raw.split(",") if part)
    for cast in (int, float):
        try:
            return cast(raw)
        except ValueError:
            continue
    if raw.lower() in ("true", "false"):
        return raw.lower() == "true"
    return raw


def _stored_argv(argv, journal_path: pathlib.Path) -> list:
    """The argv a resume should replay: this invocation's, re-journaled.

    Any ``--journal``/``--resume`` the user passed is stripped and replaced
    by a single ``--journal <path>`` so the re-invocation appends to the
    same journal regardless of which spelling (or the ``REPRO_JOURNAL``
    environment variable) attached it originally.
    """
    raw = list(argv) if argv is not None else list(sys.argv[1:])
    stored = []
    skip = False
    for token in raw:
        if skip:
            skip = False
            continue
        if token in ("--journal", "--resume"):
            skip = True
            continue
        if token.startswith("--journal=") or token.startswith("--resume="):
            continue
        stored.append(token)
    return stored + ["--journal", str(journal_path)]


def _activate_journal(parser, args, argv):
    """Resolve ``--journal``/``--resume``/``REPRO_JOURNAL`` into an active
    run journal (or ``None``) and record this process generation's meta.
    """
    resume = getattr(args, "resume", None)
    path = resume or getattr(args, "journal", None) \
        or os.environ.get("REPRO_JOURNAL")
    if not path:
        return None
    path = pathlib.Path(path)
    if resume and not path.exists():
        parser.error(f"--resume: journal {path} does not exist "
                     f"(start one with --journal)")
    generation = 0
    if path.exists():
        state = run_journal.load_journal(path)
        if state.metas:
            generation = state.generation + 1
        if resume:
            s = state.summary()
            print(f"[repro.resilience] resuming {path}: "
                  f"{s['done']} done, {s['failed']} failed, "
                  f"{s['interrupted']} interrupted, "
                  f"{len(state.unfinished())} unfinished",
                  file=sys.stderr)
    journal = run_journal.activate(path)
    journal.meta(argv=_stored_argv(argv, path), command=args.command,
                 name=getattr(args, "experiment", None)
                 or getattr(args, "spec", "") or "",
                 generation=generation)
    return journal


def _interrupted_exit(journal, signame: str, what: str) -> int:
    """Shared drain epilogue: journal the shutdown, print the resume hint."""
    if journal is not None:
        journal.note("shutdown", signal=signame)
        hint = f"resume with: repro resume {journal.path}"
    else:
        hint = "add --journal FILE to make runs resumable"
    print(f"{what}: interrupted ({signame}); {hint}", file=sys.stderr)
    return EXIT_INTERRUPTED


def main(argv=None) -> int:
    """CLI entry point.

    Thin shell around :func:`_cli` that guarantees the run journal (if one
    was activated) is flushed and detached on *every* exit path — including
    parser errors and experiment exceptions — so a later in-process
    invocation never inherits a stale journal.
    """
    try:
        return _cli(argv)
    finally:
        run_journal.deactivate()


def _cli(argv=None) -> int:
    parser = argparse.ArgumentParser(
        prog="repro",
        description="Reproduce ExpressPass (SIGCOMM 2017) experiments.",
    )
    sub = parser.add_subparsers(dest="command", required=True)
    sub.add_parser("list", help="list available experiments")

    def _add_run_options(p: argparse.ArgumentParser) -> None:
        p.add_argument("experiment", help="experiment id, e.g. fig10 or table1")
        p.add_argument("--set", action="append", default=[], metavar="KEY=VALUE",
                       help="override a run(...) keyword argument")
        p.add_argument("--json", action="store_true",
                       help="emit rows as JSON instead of a table")
        p.add_argument("--seed", type=int, default=None,
                       help="override the experiment's seed (where accepted)")
        p.add_argument("--parallel", type=int, default=None, metavar="N",
                       help="run sweep tasks on N worker processes "
                            "(0/1 = serial; default REPRO_PARALLEL or 0)")
        p.add_argument("--shards", type=int, default=None, metavar="N",
                       help="shard each single simulation across N worker "
                            "processes (repro.sim.parallel; bit-identical "
                            "to serial; 0/1 = serial; default REPRO_SHARDS "
                            "or 0)")
        p.add_argument("--no-cache", action="store_true",
                       help="disable the on-disk result cache for this run")
        p.add_argument("--retries", type=int, default=None, metavar="K",
                       help="retry a failing sweep task up to K times "
                            "(default REPRO_RETRIES or 2)")
        p.add_argument("--timeout", type=float, default=None, metavar="SEC",
                       help="best-effort per-task timeout in seconds")
        p.add_argument("--telemetry", default=None, metavar="FILE",
                       help="append sweep events as JSONL to FILE")
        p.add_argument("--trace", default=None, metavar="FILE",
                       help="capture a cross-layer trace (repro.obs.trace): "
                            "JSONL at FILE plus Perfetto-loadable "
                            "FILE.perfetto.json (default REPRO_TRACE)")
        p.add_argument("--audit", action="store_true",
                       help="run under the runtime verifier (repro.audit): "
                            "check clock monotonicity, credit rate bounds, "
                            "buffer occupancy, conservation, and path "
                            "symmetry in every simulation; exit 1 on any "
                            "violation")
        p.add_argument("--journal", default=None, metavar="FILE",
                       help="append a crash-safe run journal "
                            "(repro.resilience/v1 JSONL) to FILE so an "
                            "interrupted or killed campaign can be replayed "
                            "with 'repro resume FILE' "
                            "(default REPRO_JOURNAL)")
        p.add_argument("--resume", default=None, metavar="FILE",
                       help="like --journal but FILE must already exist: "
                            "prints its task frontier, then re-runs the "
                            "campaign (completed tasks replay from the "
                            "result cache; the report is byte-identical "
                            "to an uninterrupted run)")

    runp = sub.add_parser("run", help="run one experiment and print its table")
    _add_run_options(runp)
    runp.add_argument("--backend", choices=("packet", "fluid"), default=None,
                      help="engine backend for experiments with a fluid "
                           "trend mode (fig15/fig16/fig18); 'fluid' trades "
                           "per-packet fidelity for a 10x+ faster sweep")
    runp.add_argument("--profile", action="store_true",
                      help="profile the simulation event loop "
                           "(repro.perf.profile) and print a per-subsystem "
                           "report to stderr")
    runp.add_argument("--metrics", action="store_true",
                      help="collect repro.obs metrics (counters, time "
                           "series, flow spans) and print a summary to "
                           "stderr")
    profp = sub.add_parser(
        "profile",
        help="run one experiment under the event-loop profiler "
             "(same options as run; report goes to stderr)")
    _add_run_options(profp)
    obsp = sub.add_parser(
        "obs",
        help="run one experiment under the repro.obs metrics plane "
             "(same options as run, plus exporters)")
    _add_run_options(obsp)
    obsp.add_argument("--jsonl", default=None, metavar="FILE",
                      help="export the metrics summary as a JSONL event "
                           "stream to FILE")
    obsp.add_argument("--csv", default=None, metavar="FILE",
                      help="export collected time series as long-format CSV "
                           "to FILE")
    obsp.add_argument("--prom", default=None, metavar="FILE",
                      help="export counters/gauges/histograms as Prometheus "
                           "text to FILE")
    obsp.add_argument("--pcap", default=None, metavar="FILE",
                      help="trace every port and dump the packet records as "
                           "pcap-lite JSONL to FILE")
    obsp.add_argument("--dashboard", action="store_true",
                      help="render live sparkline panels to stderr while "
                           "the simulation runs")
    matrixp = sub.add_parser(
        "matrix",
        help="compile a scenario spec (YAML/JSON) and run its full "
             "cross-product through the runtime, then print a ranked "
             "comparison report; exit 1 on a failed cell or an audit "
             "violation")
    matrixp.add_argument("spec",
                         help="spec file path, or a bundled scenarios/ name "
                              "(see 'scenarios list')")
    matrixp.add_argument("--backend", choices=("packet", "fluid"),
                         default=None,
                         help="override the spec's engine backend "
                              "(shorthand for --set backend=...)")
    matrixp.add_argument("--seeds", default=None, metavar="S1,S2,...",
                         help="override the spec's seed list")
    matrixp.add_argument("--filter", default=None, metavar="EXPR",
                         help="run only matching cells: space-separated "
                              "terms, each 'axis=value' (exact) or a label "
                              "substring; all must match")
    matrixp.add_argument("--set", action="append", default=[],
                         metavar="PATH=VALUE",
                         help="override a spec field by dotted path, e.g. "
                              "--set timing.measure_ps=5000000000 or "
                              "--set sweep.workload.load=0.2,0.6")
    matrixp.add_argument("--json", action="store_true",
                         help="emit the full report (rows, groups, ranking) "
                              "as JSON on stdout")
    matrixp.add_argument("--report-jsonl", default=None, metavar="FILE",
                         help="write the report as a JSONL record stream "
                              "(schema repro.scenarios.report/v1) to FILE")
    matrixp.add_argument("--report-csv", default=None, metavar="FILE",
                         help="write the per-cell rows as wide CSV to FILE")
    matrixp.add_argument("--parallel", type=int, default=None, metavar="N",
                         help="run cells on N worker processes")
    matrixp.add_argument("--shards", type=int, default=None, metavar="N",
                         help="shard each single simulation across N worker "
                              "processes (overrides the spec's "
                              "timing.shards; bit-identical to serial)")
    matrixp.add_argument("--no-cache", action="store_true",
                         help="disable the on-disk result cache for this run")
    matrixp.add_argument("--retries", type=int, default=None, metavar="K",
                         help="retry a failing cell up to K times")
    matrixp.add_argument("--timeout", type=float, default=None, metavar="SEC",
                         help="best-effort per-cell timeout in seconds")
    matrixp.add_argument("--telemetry", default=None, metavar="FILE",
                         help="append runtime events as JSONL to FILE")
    matrixp.add_argument("--trace", default=None, metavar="FILE",
                         help="capture a cross-layer trace "
                              "(repro.obs.trace): JSONL at FILE plus "
                              "Perfetto-loadable FILE.perfetto.json "
                              "(default REPRO_TRACE)")
    matrixp.add_argument("--audit", action="store_true",
                         help="run every cell under the runtime verifier; "
                              "exit 1 on any violation")
    matrixp.add_argument("--metrics", action="store_true",
                         help="collect repro.obs metrics in every cell and "
                              "print a summary to stderr (disables the "
                              "cache: cached results carry no metrics)")
    matrixp.add_argument("--obs-jsonl", default=None, metavar="FILE",
                         help="export the merged obs summary as JSONL "
                              "(schema repro.obs.v1) to FILE; implies "
                              "--metrics")
    matrixp.add_argument("--journal", default=None, metavar="FILE",
                         help="append a crash-safe run journal "
                              "(repro.resilience/v1 JSONL) to FILE; enables "
                              "'repro resume FILE' (default REPRO_JOURNAL)")
    matrixp.add_argument("--resume", default=None, metavar="FILE",
                         help="like --journal but FILE must already exist: "
                              "prints its task frontier, then re-runs the "
                              "matrix (completed cells replay from the "
                              "result cache)")
    resumep = sub.add_parser(
        "resume",
        help="re-invoke an interrupted campaign from its run journal: "
             "completed tasks replay from the result cache and the report "
             "comes out byte-identical to an uninterrupted run")
    resumep.add_argument("journal",
                         help="journal file written via --journal or "
                              "REPRO_JOURNAL")
    scenp = sub.add_parser(
        "scenarios",
        help="inspect the bundled scenario library or lint a spec file")
    scenp.add_argument("action", choices=("list", "validate"))
    scenp.add_argument("spec", nargs="*",
                       help="spec file(s) or bundled name(s) to validate")
    cachep = sub.add_parser(
        "cache", help="inspect or clear the experiment result cache")
    cachep.add_argument("action", choices=("stats", "clear"))
    tracep = sub.add_parser(
        "trace",
        help="inspect a repro.obs.trace JSONL file: per-layer time sinks "
             "and the shard-imbalance table (summarize), or schema-check "
             "it (validate)")
    tracep.add_argument("action", choices=("summarize", "validate"))
    tracep.add_argument("path", help="trace JSONL file (from --trace or "
                                     "REPRO_TRACE)")
    chaosp = sub.add_parser(
        "chaos",
        help="run a fault-injection scenario on a k=4 fat tree under the "
             "audit plane and report recovery metrics; exit 1 on a stalled "
             "flow, an audit violation, or goodput recovery below 90%%")
    chaosp.add_argument("scenario",
                        help="scenario name (see 'chaos list'), or 'list'")
    chaosp.add_argument("--seed", type=int, default=1,
                        help="fault-plan / simulation seed (default 1)")
    chaosp.add_argument("--seeds", default=None, metavar="S1,S2,...",
                        help="run the scenario once per seed (overrides "
                             "--seed); seeds are swept via repro.runtime")
    chaosp.add_argument("--set", action="append", default=[],
                        metavar="KEY=VALUE",
                        help="override a scenario parameter, e.g. "
                             "duration_ps or reconverge_delay_ps")
    chaosp.add_argument("--json", action="store_true",
                        help="emit rows as JSON instead of a table")
    chaosp.add_argument("--parallel", type=int, default=None, metavar="N",
                        help="sweep seeds on N worker processes")
    chaosp.add_argument("--no-cache", action="store_true",
                        help="disable the on-disk result cache for this run")
    chaosp.add_argument("--emit-plan", default=None, metavar="FILE",
                        help="write the scenario's fault plan as JSON to "
                             "FILE (usable via REPRO_CHAOS) and exit")
    args = parser.parse_args(argv)

    if args.command == "resume":
        try:
            state = run_journal.load_journal(args.journal)
        except (FileNotFoundError, OSError) as exc:
            print(f"resume: {exc}", file=sys.stderr)
            return 1
        if not state.argv:
            print(f"resume: {args.journal}: no meta record with an argv "
                  f"(was the run started with --journal?)", file=sys.stderr)
            return 1
        if state.argv[0] == "resume":
            # A journal can only store run/matrix-family argv; a stored
            # "resume" would re-enter this branch forever.
            print(f"resume: {args.journal}: stored argv is itself a resume; "
                  f"refusing the recursion", file=sys.stderr)
            return 1
        s = state.summary()
        torn = f", {s['torn_lines']} torn line(s)" if s["torn_lines"] else ""
        print(f"[repro.resilience] {args.journal}: generation "
              f"{state.generation}, {s['done']} done, {s['failed']} failed, "
              f"{s['interrupted']} interrupted, "
              f"{len(state.unfinished())} unfinished{torn}", file=sys.stderr)
        print(f"[repro.resilience] re-invoking: repro "
              f"{' '.join(state.argv)}", file=sys.stderr)
        return main(state.argv)

    if args.command == "cache":
        config = runtime.get_config()
        cache = runtime.ResultCache(config.resolved_cache_dir(),
                                    config.max_cache_bytes,
                                    config.max_cache_entries)
        if args.action == "stats":
            stats = cache.stats()
            print(f"cache dir:  {stats['dir']}")
            print(f"entries:    {stats['entries']}"
                  f" (cap {stats['max_entries']})")
            print(f"total size: {stats['total_bytes'] / 1e6:.2f} MB"
                  f" (cap {stats['max_bytes'] / 1e6:.0f} MB)")
            print(f"torn entries pruned:    {stats['torn_pruned']}")
            print(f"eviction scans skipped: "
                  f"{stats['eviction_scans_skipped']}")
        else:
            removed = cache.clear()
            print(f"removed {removed} entries from {cache.directory}")
        return 0

    if args.command == "trace":
        from repro.obs import trace as obs_trace
        try:
            if args.action == "validate":
                info = obs_trace.validate_jsonl(args.path)
                counts = ", ".join(f"{k}={v}" for k, v
                                   in sorted(info["records"].items()))
                print(f"{args.path}: OK ({info['lines']} line(s); {counts})")
                return 0
            data = obs_trace.load_jsonl(args.path)
            print(obs_trace.format_summary(obs_trace.summarize(
                data["records"])))
            return 0
        except (OSError, ValueError) as exc:
            print(f"trace: {exc}", file=sys.stderr)
            return 1

    if args.command == "scenarios":
        from repro import scenarios as sc
        if args.action == "list":
            found = False
            for path in sc.iter_library():
                found = True
                try:
                    spec = sc.load(path)
                except sc.SpecError:
                    print(f"{path.stem:28s} INVALID (run 'scenarios "
                          f"validate {path.name}')")
                    continue
                tags = f" [{','.join(spec.tags)}]" if spec.tags else ""
                print(f"{path.stem:28s} {spec.cell_count:4d} cell(s)"
                      f"{tags}  {spec.description}")
            if not found:
                print(f"no specs in {sc.library_dir()}", file=sys.stderr)
            return 0
        if not args.spec:
            parser.error("scenarios validate needs at least one spec "
                         "file or bundled name")
        bad = 0
        for entry in args.spec:
            try:
                path = sc.resolve_spec(entry)
            except sc.SpecError as exc:
                print(exc.render(), file=sys.stderr)
                bad += 1
                continue
            problems = sc.lint(path)
            if problems:
                bad += 1
                for fld, msg in problems:
                    print(f"{path}: {fld}: {msg}", file=sys.stderr)
            else:
                spec = sc.load(path)
                print(f"{path}: OK ({spec.cell_count} cell(s))")
        return 1 if bad else 0

    journal = None
    if args.command in ("run", "profile", "obs", "matrix"):
        journal = _activate_journal(parser, args, argv)

    if args.command == "matrix":
        from repro import scenarios as sc
        try:
            spec_path = sc.resolve_spec(args.spec)
            scenario = sc.load(spec_path)
            if args.backend:
                args.set.insert(0, f"backend={args.backend}")
            if args.set:
                data = scenario.to_dict()
                for item in args.set:
                    if "=" not in item:
                        parser.error(f"--set expects PATH=VALUE, got {item!r}")
                    key, _, raw = item.partition("=")
                    value = _parse_value(raw)
                    if isinstance(value, tuple):
                        value = list(value)
                    sc.schema.set_by_path(data, key, value)
                scenario = sc.Scenario.from_dict(
                    data, source=f"{spec_path} (+overrides)",
                    base_dir=scenario.base_dir)
        except sc.SpecError as exc:
            print(exc.render(), file=sys.stderr)
            return 1
        seeds = None
        if args.seeds:
            seeds = [int(s) for s in args.seeds.split(",") if s]
        config_overrides = {}
        if args.parallel is not None:
            config_overrides["parallel"] = args.parallel
        if args.shards is not None:
            config_overrides["shards"] = args.shards
        if args.no_cache:
            config_overrides["cache_enabled"] = False
        if args.retries is not None:
            config_overrides["retries"] = args.retries
        if args.timeout is not None:
            config_overrides["task_timeout_s"] = args.timeout
        if args.telemetry:
            config_overrides["telemetry_path"] = pathlib.Path(args.telemetry)
        if args.audit:
            config_overrides["audit"] = True
        do_metrics = args.metrics or bool(args.obs_jsonl)
        if do_metrics:
            # Cached results carry no metrics (same rule as `repro obs`).
            config_overrides["metrics"] = True
            config_overrides["cache_enabled"] = False
        trace_path = args.trace or os.environ.get("REPRO_TRACE")
        tracer = None
        if trace_path:
            from repro.obs import trace as obs_trace
            tracer = obs_trace.activate()
            config_overrides["trace"] = True
        audit_verdict = None
        metrics_summary = None
        with contextlib.ExitStack() as stack:
            stack.enter_context(graceful_shutdown())
            cap = ocap = None
            if args.audit:
                from repro import audit
                audit.reset_session()
            if do_metrics:
                from repro import obs
                obs.reset_session()
                ocap = stack.enter_context(obs.capture())
            stack.enter_context(runtime.using(**config_overrides))
            if args.audit:
                cap = stack.enter_context(audit.capture())
            try:
                outcome = sc.run_matrix(scenario, seeds=seeds,
                                        cell_filter=args.filter)
            except sc.SpecError as exc:
                print(exc.render(), file=sys.stderr)
                return 1
        if args.audit:
            audit_verdict = audit.merge_summaries(
                [cap.summary, audit.session_summary()])
        if do_metrics:
            metrics_summary = obs.merge_summaries(
                [ocap.summary, obs.session_summary()])
        if tracer is not None:
            obs_trace.deactivate()
            n = obs_trace.write_files(tracer, trace_path)
            print(f"wrote {n} trace record(s) to {trace_path} "
                  f"(+ {trace_path}.perfetto.json)", file=sys.stderr)
        signame = shutdown_requested()
        if signame:
            # Drained: telemetry/trace/journal are flushed, but a partial
            # report would be misleading — skip it and point at resume.
            return _interrupted_exit(journal, signame, "matrix")
        report = outcome.report
        # Reports go to explicit file handles, never stdout: the JSONL/CSV
        # streams must stay clean of anything the surrounding environment
        # (activation hooks, warnings) may print.  Journaled runs write
        # *stable* reports (no cached/wall_s) so a resume's export is
        # byte-identical to the uninterrupted baseline's.
        stable = journal is not None
        if args.report_jsonl:
            n = sc.write_report_jsonl(args.report_jsonl, report,
                                      stable=stable)
            print(f"wrote {n} report record(s) to {args.report_jsonl}",
                  file=sys.stderr)
        if args.report_csv:
            n = sc.write_report_csv(args.report_csv, report, stable=stable)
            print(f"wrote {n} CSV row(s) to {args.report_csv}",
                  file=sys.stderr)
        if args.obs_jsonl and metrics_summary is not None:
            from repro.obs import export as obs_export
            n = obs_export.write_jsonl(args.obs_jsonl, metrics_summary)
            print(f"wrote {n} obs record(s) to {args.obs_jsonl}",
                  file=sys.stderr)
        if args.json:
            print(json.dumps({
                "scenario": report.scenario, "compare": report.compare,
                "objectives": report.objectives, "meta": report.meta,
                "rows": report.rows, "groups": report.groups,
                "ranking": [{"rank": i, "group": g, "score": s}
                            for i, (g, s) in enumerate(report.ranking, 1)],
            }, indent=2, default=str))
        else:
            print(sc.format_report(report))
        if metrics_summary is not None and args.metrics:
            print(obs.format_summary(metrics_summary), file=sys.stderr)
        status = 0
        if not outcome.ok:
            for res in outcome.failed:
                print(f"matrix: FAILED cell {res.label}: {res.error}",
                      file=sys.stderr)
            status = 1
        if audit_verdict is not None:
            from repro.audit import format_summary as audit_format
            print(audit_format(audit_verdict), file=sys.stderr)
            if not audit_verdict["ok"]:
                status = 1
        return status

    if args.command == "chaos":
        from repro.chaos import scenarios as chaos_scenarios
        if args.scenario == "list":
            for name in chaos_scenarios.SCENARIOS:
                print(name)
            return 0
        if args.scenario not in chaos_scenarios.SCENARIOS:
            parser.error(
                f"unknown chaos scenario {args.scenario!r}; "
                f"try: {', '.join(chaos_scenarios.SCENARIOS)}")
        overrides = {}
        for item in args.set:
            if "=" not in item:
                parser.error(f"--set expects KEY=VALUE, got {item!r}")
            key, _, raw = item.partition("=")
            overrides[key] = _parse_value(raw)
        if args.emit_plan:
            plan_kwargs = {k: overrides[k] for k in
                           ("fault_ps", "duration_ps", "reconverge_delay_ps")
                           if k in overrides}
            plan = chaos_scenarios.plan_for(args.scenario, seed=args.seed,
                                            **plan_kwargs)
            plan.save(args.emit_plan)
            print(f"wrote fault plan for {args.scenario!r} to "
                  f"{args.emit_plan}")
            return 0
        seeds = None
        if args.seeds:
            seeds = [int(s) for s in args.seeds.split(",") if s]
        config_overrides = {}
        if args.parallel is not None:
            config_overrides["parallel"] = args.parallel
        if args.no_cache:
            config_overrides["cache_enabled"] = False
        with runtime.using(**config_overrides):
            result = chaos_scenarios.run(scenario=args.scenario,
                                         seed=args.seed, seeds=seeds,
                                         **overrides)
        if args.json:
            print(json.dumps({"name": result.name, "rows": result.rows,
                              "meta": result.meta}, indent=2, default=str))
        else:
            print(format_table(result))
        if not result.meta["ok"]:
            bad = [r for r in result.rows if not r["ok"]]
            print(f"chaos: FAILED — {len(bad)} of {len(result.rows)} run(s) "
                  f"stalled, violated an invariant, or recovered below "
                  f"{chaos_scenarios.RECOVERY_FRACTION:.0%} goodput",
                  file=sys.stderr)
            return 1
        return 0

    registry = _registry()
    if args.command == "list":
        for name in sorted(registry, key=lambda n: (len(n), n)):
            doc = (sys.modules[registry[name].__module__].__doc__ or "")
            summary = doc.strip().splitlines()[0] if doc else ""
            print(f"{name:8s} {summary}")
        return 0

    if args.experiment not in registry:
        parser.error(f"unknown experiment {args.experiment!r}; "
                     f"try: {', '.join(sorted(registry))}")
    overrides = {}
    for item in args.set:
        if "=" not in item:
            parser.error(f"--set expects KEY=VALUE, got {item!r}")
        key, _, raw = item.partition("=")
        overrides[key] = _parse_value(raw)

    fn = registry[args.experiment]
    if getattr(args, "backend", None):
        if "backend" not in inspect.signature(fn).parameters:
            parser.error(f"{args.experiment} has no fluid trend mode; "
                         f"--backend applies to fig15, fig16, and fig18")
        overrides["backend"] = args.backend
    if args.seed is not None:
        params = inspect.signature(fn).parameters
        if ("seed" in params
                or any(p.kind == p.VAR_KEYWORD for p in params.values())):
            overrides["seed"] = args.seed
        else:
            print(f"note: {args.experiment} is analytic and takes no seed; "
                  f"ignoring --seed", file=sys.stderr)

    config_overrides = {}
    if args.parallel is not None:
        config_overrides["parallel"] = args.parallel
    if getattr(args, "shards", None) is not None:
        config_overrides["shards"] = args.shards
    if args.no_cache:
        config_overrides["cache_enabled"] = False
    if args.retries is not None:
        config_overrides["retries"] = args.retries
    if args.timeout is not None:
        config_overrides["task_timeout_s"] = args.timeout
    if args.telemetry:
        config_overrides["telemetry_path"] = pathlib.Path(args.telemetry)
    if args.audit:
        config_overrides["audit"] = True
    do_profile = args.command == "profile" or getattr(args, "profile", False)
    if do_profile:
        # Profiling wants the simulations to actually run: a cache-served
        # sweep would profile nothing, so the result cache is bypassed.
        config_overrides["profile"] = True
        config_overrides["cache_enabled"] = False
    do_metrics = args.command == "obs" or getattr(args, "metrics", False)
    if do_metrics:
        # Same logic as profiling: cached results carry no metrics.
        config_overrides["metrics"] = True
        config_overrides["cache_enabled"] = False
    trace_path = getattr(args, "trace", None) or os.environ.get("REPRO_TRACE")
    tracer = None
    if trace_path:
        from repro.obs import trace as obs_trace
        tracer = obs_trace.activate()
        config_overrides["trace"] = True

    # Outer captures cover simulations the experiment runs directly in this
    # process; sweep tasks are captured individually by the scheduler (in
    # their worker processes when parallel) and banked on the session.  The
    # profiler's session nesting ensures the two sources never double count.
    audit_verdict = None
    profile_report = None
    metrics_summary = None
    with contextlib.ExitStack() as stack:
        stack.enter_context(graceful_shutdown())
        cap = prof_session = ocap = None
        if args.audit:
            from repro import audit
            audit.reset_session()
        if do_profile:
            from repro.perf import profile as perf_profile
            perf_profile.reset_task_summaries()
            prof_session = stack.enter_context(perf_profile.profiled())
        if do_metrics:
            from repro import obs
            obs.reset_session()
            ocap = stack.enter_context(obs.capture(
                dashboard=(sys.stderr if getattr(args, "dashboard", False)
                           else None),
                trace=bool(getattr(args, "pcap", None))))
        stack.enter_context(runtime.using(**config_overrides))
        if args.audit:
            cap = stack.enter_context(audit.capture())
        try:
            result = fn(**overrides)
        except runtime.SweepError:
            # Every task in the sweep was cut short by the drain; there is
            # no result, but that is an interruption, not a failure.
            if not shutdown_requested():
                raise
            result = None
    if args.audit:
        audit_verdict = audit.merge_summaries(
            [cap.summary, audit.session_summary()])
    if do_profile:
        profile_report = prof_session.report
        for _label, summary in perf_profile.task_summaries():
            profile_report.add_summary(summary)
    if do_metrics:
        metrics_summary = obs.merge_summaries(
            [ocap.summary, obs.session_summary()])
        from repro.obs import export as obs_export
        if getattr(args, "jsonl", None):
            n = obs_export.write_jsonl(args.jsonl, metrics_summary)
            print(f"wrote {n} JSONL record(s) to {args.jsonl}",
                  file=sys.stderr)
        if getattr(args, "csv", None):
            n = obs_export.write_csv(args.csv, metrics_summary)
            print(f"wrote {n} CSV row(s) to {args.csv}", file=sys.stderr)
        if getattr(args, "prom", None):
            obs_export.write_prometheus(args.prom, metrics_summary)
            print(f"wrote Prometheus text to {args.prom}", file=sys.stderr)
        if getattr(args, "pcap", None):
            tracers = [t for reg in ocap.registries for t in reg.tracers]
            n = obs_export.dump_traces(args.pcap, tracers)
            print(f"wrote {n} packet record(s) to {args.pcap}",
                  file=sys.stderr)
    if tracer is not None:
        obs_trace.deactivate()
        n = obs_trace.write_files(tracer, trace_path)
        print(f"wrote {n} trace record(s) to {trace_path} "
              f"(+ {trace_path}.perfetto.json)", file=sys.stderr)
    signame = shutdown_requested()
    if signame or result is None:
        # A drained run may still hold partial rows; printing them would
        # look like a (wrong) result, so skip straight to the resume hint.
        return _interrupted_exit(journal, signame or "SIGINT",
                                 args.experiment)
    if args.json:
        print(json.dumps({"name": result.name, "rows": result.rows,
                          "meta": result.meta}, indent=2, default=str))
    else:
        print(format_table(result))
    if profile_report is not None:
        print(profile_report.format(), file=sys.stderr)
    if metrics_summary is not None:
        print(obs.format_summary(metrics_summary), file=sys.stderr)
    if audit_verdict is not None:
        from repro.audit import format_summary
        print(format_summary(audit_verdict), file=sys.stderr)
        if not audit_verdict["ok"]:
            return 1
    return 0


if __name__ == "__main__":  # pragma: no cover - exercised via __main__
    sys.exit(main())

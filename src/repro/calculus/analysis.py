"""Closed-form §4 analysis: Eq. 3–6 trajectories and steady-state bounds.

The paper derives, for N synchronized flows after the system enters the
alternating increase/decrease regime at t0:

    R_n(t0 + 2k)     ≈ A(t0)^-k (1 - w_n)^k R_n(t0) + w_n C / (A - (1 - w_n))
    R_n(t0 + 2k + 1) ≈ (1 - w_n(t0+2k)) R_n(t0+2k) + w_n(t0+2k) C      (Eq. 3/4)

with A(t0) = 1 + Σ_i w_i (1 - R_i(t0)/C).  Once every w has decayed to
w_min (time t_c):

    R_n(t_c + 2k)     → C / N                                           (Eq. 5)
    R_n(t_c + 2k + 1) → (C/N) (1 + (N-1) w_min)                         (Eq. 6)

and the oscillation amplitude converges to D* = C w_min (1 - 1/N).

This module evaluates those formulas so tests can check the *implemented*
feedback loop (:mod:`repro.core.feedback`) against the *derived* behaviour —
the reproduction of §4 "Analysis of ExpressPass".
"""

from __future__ import annotations

from typing import List, Sequence


def aggressiveness_at(k: int, w0: float, w_min: float) -> float:
    """w after k decrease events: halves each time, floored at w_min."""
    w = w0
    for _ in range(k):
        w = max(w / 2, w_min)
    return w


def eq34_trajectory(
    initial_rates: Sequence[float],
    w0: float,
    periods: int,
    capacity: float = 1.0,
    target_loss: float = 0.1,
    w_min: float = 0.01,
) -> List[List[float]]:
    """Evaluate the Eq. 3/4 recurrence directly (not the simulator).

    Returns ``rates[t][n]`` for t in [0, periods).  Follows the paper's
    alternating-phase model: even steps renormalize the aggregate to C
    (decrease), odd steps apply the w-weighted pull toward C (increase),
    with w halving every two periods down to w_min.
    """
    if not initial_rates:
        raise ValueError("need at least one flow")
    ceiling = capacity * (1 + target_loss)
    rates = [list(initial_rates)]
    w = [w0] * len(initial_rates)
    for t in range(1, periods):
        prev = rates[-1]
        if t % 2 == 1:
            # Increase phase (Eq. 4): R <- (1-w) R + w C.
            cur = [(1 - wn) * r + wn * ceiling for wn, r in zip(w, prev)]
        else:
            # Decrease phase renormalizes the aggregate back to C (the
            # derivation's R(t0+2k) step), then w halves.
            total = sum(prev)
            scale = ceiling / total if total > 0 else 1.0
            cur = [r * scale for r in prev]
            w = [max(wn / 2, w_min) for wn in w]
        rates.append(cur)
    return rates


def steady_state_even(n_flows: int, capacity: float = 1.0,
                      target_loss: float = 0.1) -> float:
    """Eq. 5: the even-step fixed point C/N (C including the loss target)."""
    if n_flows < 1:
        raise ValueError("need at least one flow")
    return capacity * (1 + target_loss) / n_flows


def steady_state_odd(n_flows: int, w_min: float = 0.01, capacity: float = 1.0,
                     target_loss: float = 0.1) -> float:
    """Eq. 6: the odd-step fixed point (C/N)(1 + (N-1) w_min)."""
    return steady_state_even(n_flows, capacity, target_loss) * (
        1 + (n_flows - 1) * w_min)


def d_star(n_flows: int, w_min: float = 0.01, capacity: float = 1.0,
           target_loss: float = 0.1) -> float:
    """The terminal oscillation amplitude D* = C w_min (1 - 1/N)."""
    if n_flows < 1:
        raise ValueError("need at least one flow")
    return capacity * (1 + target_loss) * w_min * (1 - 1 / n_flows)


def convergence_periods(w0: float, w_min: float) -> int:
    """Periods until w reaches w_min (t_c - t0): w halves every 2 periods."""
    if not 0 < w_min <= w0:
        raise ValueError("need 0 < w_min <= w0")
    k = 0
    w = w0
    while w > w_min:
        w = max(w / 2, w_min)
        k += 1
    return 2 * k

"""Zero-loss buffer bounds via the paper's delay-spread recursion (Eq. 1).

For a credit ingress port *p*, the delay between a credit arriving and the
corresponding data packet returning is::

    d_p = d_credit + t(p, q) + d_q + d_data(q)

where *q* ranges over the possible next-hop ingress ports N(p),
``d_credit`` is the (egress) credit-queue delay — at most the carved queue
capacity times one 1622 B credit slot — ``t`` is switching + transmission +
propagation for the credit out and the data back, and ``d_data(q)``'s
maximum is the next hop's delay spread ∆d_q.  The spread

    ∆d_p = max(d_credit) + max_q(t + d_q + ∆d_q) − min_q(t + d_q)      (Eq. 1)

is the worst-case duration of simultaneous data arrival at the port, so the
zero-loss buffer is ``∆d_p × line rate``.

We evaluate the recursion over the port *classes* of a 3-tier fat tree /
Clos (host NIC, ToR↔agg, agg↔core), iterating bottom-up exactly as §3.1
describes.  Two readings of Eq. 1 are implemented:

* ``mode="literal"`` (default) — ``d_q`` in the max-branch is the next hop's
  *maximum* delay, so the returning data's queueing (one ∆d per hop) stacks
  along the path.  This is the conservative literal reading; its ToR-down
  figure lands close to Table 1's (the binding requirement).
* ``mode="tight"`` — ``d_q`` is the next hop's *minimum* delay everywhere
  and only one ∆d_q term is added.  Its ToR-up and core figures land close
  to Table 1's.

The paper's exact per-class arithmetic is not published; EXPERIMENTS.md
records both modes against Table 1 and checks the shape criteria (ToR down
≫ core > ToR up; sub-linear growth in link speed; smaller credit queues and
host spreads shrink the bound, Fig 5).
"""

from __future__ import annotations

from dataclasses import dataclass, replace
from typing import Dict

from repro.net.packet import CREDIT_WIRE_MIN, DATA_WIRE_MAX
from repro.sim.units import GBPS, US

_CREDIT_SLOT_BYTES = CREDIT_WIRE_MIN + DATA_WIRE_MAX  # 1622 B per credit slot


@dataclass(frozen=True)
class TopologyParams:
    """Parameters of a hierarchical (3-tier) topology for the recursion.

    ``host_rate_bps`` is the server/ToR-edge link speed and
    ``core_rate_bps`` the switch-to-switch (agg/core) speed — the paper's
    "(link / core-link speed)" pairs.  Propagation defaults follow §3.1:
    5 µs on core links, 1 µs elsewhere.
    """

    host_rate_bps: int = 10 * GBPS
    core_rate_bps: int = 40 * GBPS
    credit_queue_pkts: int = 8
    host_delay_spread_ps: int = int(5.1 * US)  # testbed ∆d_host (Fig 14a)
    edge_prop_ps: int = 1 * US
    core_prop_ps: int = 5 * US

    def credit_queue_delay_ps(self, rate_bps: int) -> int:
        """Max credit-queue delay: capacity × one credit slot at the meter rate."""
        return self.credit_queue_pkts * _CREDIT_SLOT_BYTES * 8 * 10**12 // rate_bps

    def hop_ps(self, rate_bps: int, prop_ps: int) -> int:
        """t(p, q): credit out + data back (transmission + propagation each)."""
        tx = (CREDIT_WIRE_MIN + DATA_WIRE_MAX) * 8 * 10**12 // rate_bps
        return tx + 2 * prop_ps


@dataclass(frozen=True)
class ClassDelay:
    """Delay envelope of one credit-ingress port class (picoseconds)."""

    d_min_ps: int
    d_max_ps: int

    @property
    def spread_ps(self) -> int:
        return self.d_max_ps - self.d_min_ps


@dataclass(frozen=True)
class BufferBounds:
    """Per-port zero-loss buffer requirement in bytes (Table 1 columns)."""

    tor_down_bytes: float
    tor_up_bytes: float
    core_bytes: float
    spreads_ps: Dict[str, int]


def _combine(params: TopologyParams, dcredit_ps: int, branches, mode: str) -> ClassDelay:
    """Apply Eq. 1 over next-hop branches.

    Each branch is ``(t_ps, child: ClassDelay)``.  ``literal`` stacks the
    child's data-queueing spread on top of its max delay; ``tight`` measures
    the spread from the child's min delay.
    """
    lows = [t + c.d_min_ps for t, c in branches]
    if mode == "literal":
        highs = [t + c.d_max_ps + c.spread_ps for t, c in branches]
    elif mode == "tight":
        highs = [t + c.d_min_ps + c.spread_ps for t, c in branches]
    else:
        raise ValueError(f"unknown mode {mode!r}")
    return ClassDelay(min(lows), dcredit_ps + max(highs))


def buffer_bounds(params: TopologyParams, mode: str = "literal") -> BufferBounds:
    """Evaluate the recursion for a 3-tier fat tree / Clos.

    Port classes, in credit-travel order (receiver NIC → ... → sender NIC):

    * ``host``      — sender NIC: spread = ∆d_host.
    * ``tor_from_agg`` — credits descending a ToR toward hosts; its spread
      sizes the **ToR up** data buffer (data ascending the same port pair).
    * ``agg_from_core`` / ``agg_from_tor`` — aggregation layer, both
      directions.
    * ``core_from_agg`` — credits turning around at a core switch; sizes the
      **core** data buffer.
    * ``tor_from_host`` — credits entering at the receiver-side ToR from a
      host, with both intra-rack (host) and inter-pod (agg) continuations;
      its spread sizes the **ToR down** data buffer and is the largest of
      all (§3.1: "ToR downlink has the largest path length variance").
    """
    host = ClassDelay(0, params.host_delay_spread_ps)

    t_edge_host = params.hop_ps(params.host_rate_bps, params.edge_prop_ps)
    t_edge_sw = params.hop_ps(params.core_rate_bps, params.edge_prop_ps)
    t_core = params.hop_ps(params.core_rate_bps, params.core_prop_ps)

    dc_host_link = params.credit_queue_delay_ps(params.host_rate_bps)
    dc_sw_link = params.credit_queue_delay_ps(params.core_rate_bps)

    # Credits descending: ToR -> host (egress credit queue at host rate).
    tor_from_agg = _combine(params, dc_host_link, [(t_edge_host, host)], mode)
    # Aggregation switch forwarding credits down to a ToR.
    agg_from_core = _combine(params, dc_sw_link, [(t_edge_sw, tor_from_agg)], mode)
    # Core switch: the turn-around point of inter-pod credits.
    core_from_agg = _combine(params, dc_sw_link, [(t_core, agg_from_core)], mode)
    # Aggregation switch forwarding credits up (inter-pod) or down (intra-pod).
    agg_from_tor = _combine(
        params, dc_sw_link,
        [(t_core, core_from_agg), (t_edge_sw, tor_from_agg)], mode,
    )
    # Receiver-side ToR: intra-rack (direct to host) or up through the fabric.
    tor_from_host = _combine(
        params, dc_sw_link,
        [(t_edge_sw, agg_from_tor), (t_edge_host, host)], mode,
    )

    def to_bytes(spread_ps: int, rate_bps: int) -> float:
        return spread_ps * rate_bps / (8 * 10**12)

    return BufferBounds(
        tor_down_bytes=to_bytes(tor_from_host.spread_ps, params.host_rate_bps),
        tor_up_bytes=to_bytes(tor_from_agg.spread_ps, params.host_rate_bps),
        core_bytes=to_bytes(core_from_agg.spread_ps, params.core_rate_bps),
        spreads_ps={
            "host": host.spread_ps,
            "tor_from_agg": tor_from_agg.spread_ps,
            "agg_from_core": agg_from_core.spread_ps,
            "core_from_agg": core_from_agg.spread_ps,
            "agg_from_tor": agg_from_tor.spread_ps,
            "tor_from_host": tor_from_host.spread_ps,
        },
    )


def tor_switch_buffer_breakdown(params: TopologyParams, k: int = 32,
                                mode: str = "literal") -> Dict[str, float]:
    """Fig 5: maximum total buffer for one ToR switch, by contributing source.

    A k-ary fat-tree ToR has k/2 host-facing (down) and k/2 agg-facing (up)
    ports.  The stacked-bar decomposition zeroes one contributor at a time:

    * ``static_credit`` — the carved credit buffers themselves,
    * ``host_delay``    — the share attributable to ∆d_host,
    * ``credit_queue``  — the share attributable to credit-queue delay,
    * ``base``          — what remains (propagation/transmission spread).
    """
    half = k // 2
    full = buffer_bounds(params, mode)

    def total(bounds: BufferBounds) -> float:
        return half * (bounds.tor_down_bytes + bounds.tor_up_bytes)

    no_host = buffer_bounds(replace(params, host_delay_spread_ps=0), mode)
    # Zeroing the credit queue removes its delay contribution; the carved
    # buffer itself is accounted separately below.
    no_credit = buffer_bounds(replace(params, credit_queue_pkts=0), mode)
    static_credit = k * params.credit_queue_pkts * CREDIT_WIRE_MIN
    host_share = total(full) - total(no_host)
    credit_share = total(full) - total(no_credit)
    base = max(total(full) - host_share - credit_share, 0.0)
    return {
        "total": total(full) + static_credit,
        "static_credit": static_credit,
        "host_delay": host_share,
        "credit_queue": credit_share,
        "base": base,
    }

"""Network-calculus queue bounds (§3.1 "Ensuring zero data loss")."""

from repro.calculus.bounds import (
    BufferBounds,
    ClassDelay,
    TopologyParams,
    buffer_bounds,
    tor_switch_buffer_breakdown,
)
from repro.calculus.analysis import (
    aggressiveness_at,
    convergence_periods,
    d_star,
    eq34_trajectory,
    steady_state_even,
    steady_state_odd,
)

__all__ = [
    "TopologyParams",
    "ClassDelay",
    "BufferBounds",
    "buffer_bounds",
    "tor_switch_buffer_breakdown",
    "aggressiveness_at",
    "convergence_periods",
    "d_star",
    "eq34_trajectory",
    "steady_state_even",
    "steady_state_odd",
]

"""Topology builders used by the paper's experiments.

All builders return a :class:`~repro.topology.network.Network` (plus builder-
specific handles such as bottleneck ports).  Available shapes:

* :func:`~repro.topology.simple.dumbbell` — N sender/receiver pairs over one
  bottleneck (microbenchmarks, Figs 13, 15, 16).
* :func:`~repro.topology.simple.single_switch` — one ToR star (Figs 1, 9, 17).
* :func:`~repro.topology.simple.parking_lot` — chain of bottlenecks (Fig 10).
* :func:`~repro.topology.simple.multi_bottleneck` — Fig 4(a)/11(a) shape.
* :func:`~repro.topology.fattree.fat_tree` — k-ary fat tree with consistent
  aggregation↔core wiring for symmetric ECMP (Figs 1, 19-21, Table 3).
* :func:`~repro.topology.fattree.oversubscribed_clos` — 3-tier Clos with a
  configurable ToR oversubscription ratio (the paper's realistic-workload
  fabric: 8 core / 16 agg / 32 ToR / 192 hosts at 3:1).
"""

from repro.topology.network import LinkSpec, Network
from repro.topology.simple import (
    dumbbell,
    multi_bottleneck,
    parking_lot,
    single_switch,
)
from repro.topology.fattree import fat_tree, oversubscribed_clos

__all__ = [
    "Network",
    "LinkSpec",
    "dumbbell",
    "single_switch",
    "parking_lot",
    "multi_bottleneck",
    "fat_tree",
    "oversubscribed_clos",
]

"""The Network container: nodes, links, and routing for one simulation."""

from __future__ import annotations

from dataclasses import dataclass, replace
from typing import Dict, List, Optional, Tuple

from repro.net.host import Host, HostDelayModel
from repro.net.link import connect
from repro.net.port import Port
from repro.net.routing import build_ecmp_tables
from repro.net.switch import Switch
from repro.sim.engine import Simulator
from repro.sim.units import GBPS, KB, US


@dataclass(frozen=True)
class LinkSpec:
    """Per-link configuration.

    Defaults follow the paper's simulation setup: 10 Gbit/s links, 4 µs
    propagation delay, shallow shared buffers (the paper uses 250 MTUs ≈
    384.5 KB per port at 10 G), and 8-credit carved queues.
    """

    rate_bps: int = 10 * GBPS
    prop_delay_ps: int = 4 * US
    data_capacity_bytes: int = 250 * 1538  # 250 MTUs, paper §6.3
    credit_capacity_pkts: int = 8
    ecn_threshold_bytes: Optional[int] = None

    def scaled_buffer(self, factor: float) -> "LinkSpec":
        """A copy with the data buffer scaled by ``factor``."""
        return replace(self, data_capacity_bytes=int(self.data_capacity_bytes * factor))


class Network:
    """Owns the simulator's nodes and wires routing together.

    Typical use::

        net = Network(sim)
        h0, h1 = net.add_host(), net.add_host()
        sw = net.add_switch()
        net.link(h0, sw, LinkSpec())
        net.link(h1, sw, LinkSpec())
        net.finalize()
    """

    def __init__(self, sim: Simulator, host_delay: Optional[HostDelayModel] = None):
        self.sim = sim
        self.nodes: Dict[int, object] = {}
        self.hosts: List[Host] = []
        self.switches: List[Switch] = []
        self.ports: List[Port] = []
        self._next_id = 0
        self._host_delay = host_delay
        self._finalized = False

    # -- construction -------------------------------------------------------
    def add_host(self, name: str = "", delay_model: Optional[HostDelayModel] = None) -> Host:
        # The delay model is stateless apart from its RNG stream (shared and
        # owned by the simulator), so hosts can safely share one instance.
        model = delay_model if delay_model is not None else self._host_delay
        host = Host(self.sim, self._next_id, name, model)
        self._next_id += 1
        self.nodes[host.id] = host
        self.hosts.append(host)
        return host

    def add_switch(self, name: str = "") -> Switch:
        switch = Switch(self.sim, self._next_id, name)
        self._next_id += 1
        self.nodes[switch.id] = switch
        self.switches.append(switch)
        return switch

    def link(self, a, b, spec: LinkSpec) -> Tuple[Port, Port]:
        ab, ba = connect(
            self.sim, a, b,
            rate_bps=spec.rate_bps,
            prop_delay_ps=spec.prop_delay_ps,
            data_capacity_bytes=spec.data_capacity_bytes,
            credit_capacity_pkts=spec.credit_capacity_pkts,
            ecn_threshold_bytes=spec.ecn_threshold_bytes,
        )
        self.ports.extend((ab, ba))
        return ab, ba

    def finalize(self) -> None:
        """Build routing tables.  Call after all links are in place.

        If runtime auditing is active (``REPRO_AUDIT=1``, ``--audit``, or an
        open :func:`repro.audit.capture` scope), this also attaches the
        invariant observers to every port; likewise metrics
        (``REPRO_METRICS=1``, ``--metrics``, :func:`repro.obs.capture`)
        attaches the simulator's :class:`~repro.obs.MetricsRegistry`.  Both
        are no-ops otherwise.
        """
        build_ecmp_tables(self.nodes, [h.id for h in self.hosts])
        self._finalized = True
        from repro.audit import maybe_attach
        maybe_attach(self)
        from repro.obs import maybe_attach as _obs_attach
        _obs_attach(self)
        from repro.chaos import maybe_attach as _chaos_attach
        _chaos_attach(self)

    # -- link failures (§3.1: "exclude links that fail unidirectionally") ----
    def fail_link(self, a, b, direction: str = "both") -> None:
        """Take the a<->b link down and reroute around it.

        ``direction`` may be "both", "a->b", or "b->a"; routing excludes the
        link in every case (a unidirectional failure breaks path symmetry,
        so the paper removes such links entirely).  Packets already on the
        wire still arrive; packets queued at a down port are not flushed but
        no new ones are accepted.
        """
        self.set_link_state(a, b, up=False, direction=direction)
        self.reconverge()

    def restore_link(self, a, b) -> None:
        """Bring the a<->b link back up (both directions) and reroute."""
        self.set_link_state(a, b, up=True)
        self.reconverge()

    def set_link_state(self, a, b, up: bool, direction: str = "both") -> None:
        """Flip the administrative state of the a<->b link WITHOUT rerouting.

        Routing still points at the link until :meth:`reconverge` runs —
        the window in which packets blackhole into the down port.  The
        chaos plane uses this split to model routing-convergence delay;
        :meth:`fail_link` / :meth:`restore_link` wrap it with an immediate
        reconvergence for callers that don't care about the window.
        """
        fwd = a.ports.get(b.id)
        rev = b.ports.get(a.id)
        if fwd is None or rev is None:
            raise ValueError(f"no link between {a.name} and {b.name}")
        if direction not in ("both", "a->b", "b->a"):
            raise ValueError(f"bad direction {direction!r}")
        if direction in ("both", "a->b"):
            fwd.up = up
        if direction in ("both", "b->a"):
            rev.up = up

    def reconverge(self) -> None:
        """Rebuild ECMP tables from current link states (routing has
        'noticed' every failure and repair applied so far)."""
        build_ecmp_tables(self.nodes, [h.id for h in self.hosts])

    # -- lookups --------------------------------------------------------------
    def port_between(self, a, b) -> Port:
        """The egress port on ``a`` facing ``b``."""
        return a.ports[b.id]

    def all_data_queues(self):
        """(port, data queue) pairs across the network, for queue audits."""
        return [(p, p.data_queue) for p in self.ports]

    def max_data_queue_bytes(self) -> int:
        """Largest data-queue occupancy ever observed on any port."""
        return max((p.data_queue.stats.max_bytes for p in self.ports), default=0)

    def total_data_drops(self) -> int:
        return sum(p.data_queue.stats.dropped for p in self.ports)

    def total_credit_drops(self) -> int:
        return sum(p.credit_queue.stats.dropped for p in self.ports)

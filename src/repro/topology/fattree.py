"""k-ary fat trees and oversubscribed 3-tier Clos fabrics.

Wiring is *consistent* across pods (aggregation switch ``j`` of every pod
connects to core group ``j``), which together with sorted next-hop lists and
symmetric flow hashing yields mirrored credit/data paths (§3.1).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Optional

from repro.net.host import Host, HostDelayModel
from repro.sim.engine import Simulator
from repro.topology.network import LinkSpec, Network


@dataclass
class FatTree:
    net: Network
    k: int
    hosts: List[Host]
    tors: List[object]
    aggs: List[object]
    cores: List[object]
    tor_uplink_ports: List[object]  # ToR -> agg egress ports
    tor_downlink_ports: List[object]  # ToR -> host egress ports


def fat_tree(
    sim: Simulator,
    k: int,
    edge: Optional[LinkSpec] = None,
    core: Optional[LinkSpec] = None,
    host_delay: Optional[HostDelayModel] = None,
) -> FatTree:
    """Standard k-ary fat tree: k pods, (k/2)^2 cores, k/2 hosts per ToR.

    ``edge`` configures host—ToR and ToR—agg links, ``core`` the agg—core
    links (the paper runs e.g. 10 G edge / 40 G core).
    """
    if k < 2 or k % 2:
        raise ValueError("fat tree arity k must be even and >= 2")
    edge = edge or LinkSpec()
    core = core or edge
    half = k // 2
    net = Network(sim, host_delay)

    cores_ = [net.add_switch(f"core{i}") for i in range(half * half)]
    tors, aggs, hosts = [], [], []
    tor_up, tor_down = [], []
    for pod in range(k):
        pod_aggs = [net.add_switch(f"agg{pod}_{j}") for j in range(half)]
        pod_tors = [net.add_switch(f"tor{pod}_{j}") for j in range(half)]
        aggs.extend(pod_aggs)
        tors.extend(pod_tors)
        for tor in pod_tors:
            for agg in pod_aggs:
                up, _ = net.link(tor, agg, edge)
                tor_up.append(up)
            for h in range(half):
                host = net.add_host(f"h{pod}_{tor.name.split('_')[1]}_{h}")
                _, down = net.link(host, tor, edge)
                tor_down.append(down)
                hosts.append(host)
        # Aggregation switch j serves core group j: cores [j*half, (j+1)*half).
        for j, agg in enumerate(pod_aggs):
            for c in range(half):
                net.link(agg, cores_[j * half + c], core)
    net.finalize()
    return FatTree(net, k, hosts, tors, aggs, cores_, tor_up, tor_down)


@dataclass
class Clos:
    net: Network
    hosts: List[Host]
    tors: List[object]
    aggs: List[object]
    cores: List[object]
    tor_uplink_ports: List[object]
    oversubscription: float


def oversubscribed_clos(
    sim: Simulator,
    n_core: int = 4,
    n_pods: int = 4,
    n_agg_per_pod: int = 2,
    n_tor_per_pod: int = 2,
    hosts_per_tor: int = 6,
    edge: Optional[LinkSpec] = None,
    core: Optional[LinkSpec] = None,
    host_delay: Optional[HostDelayModel] = None,
) -> Clos:
    """3-tier Clos with ToR oversubscription (paper's realistic fabric).

    Every ToR connects to every aggregation switch in its pod; every
    aggregation switch connects to every core.  The ToR oversubscription
    ratio is ``hosts_per_tor / n_agg_per_pod`` when edge and uplink rates
    match (the paper's fabric is 3:1).
    """
    if n_core % n_agg_per_pod:
        raise ValueError("n_core must be a multiple of n_agg_per_pod for "
                         "consistent core grouping")
    edge = edge or LinkSpec()
    core = core or edge
    net = Network(sim, host_delay)
    cores_ = [net.add_switch(f"core{i}") for i in range(n_core)]
    tors, aggs, hosts, tor_up = [], [], [], []
    group = n_core // n_agg_per_pod
    for pod in range(n_pods):
        pod_aggs = [net.add_switch(f"agg{pod}_{j}") for j in range(n_agg_per_pod)]
        aggs.extend(pod_aggs)
        for j, agg in enumerate(pod_aggs):
            for c in range(group):
                net.link(agg, cores_[j * group + c], core)
        for t in range(n_tor_per_pod):
            tor = net.add_switch(f"tor{pod}_{t}")
            tors.append(tor)
            for agg in pod_aggs:
                up, _ = net.link(tor, agg, edge)
                tor_up.append(up)
            for h in range(hosts_per_tor):
                host = net.add_host(f"h{pod}_{t}_{h}")
                net.link(host, tor, edge)
                hosts.append(host)
    net.finalize()
    ratio = hosts_per_tor * edge.rate_bps / (n_agg_per_pod * edge.rate_bps)
    return Clos(net, hosts, tors, aggs, cores_, tor_up, ratio)

"""Small fixed topologies: dumbbell, star, parking lot, multi-bottleneck."""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import List, Optional

from repro.net.host import Host, HostDelayModel
from repro.net.port import Port
from repro.sim.engine import Simulator
from repro.topology.network import LinkSpec, Network


@dataclass
class Dumbbell:
    """N sender/receiver pairs sharing one bottleneck link."""

    net: Network
    senders: List[Host]
    receivers: List[Host]
    bottleneck_fwd: Port  # left switch -> right switch (data direction)
    bottleneck_rev: Port  # right switch -> left switch (credit direction)


def dumbbell(
    sim: Simulator,
    n_pairs: int,
    edge: Optional[LinkSpec] = None,
    bottleneck: Optional[LinkSpec] = None,
    host_delay: Optional[HostDelayModel] = None,
) -> Dumbbell:
    """Build a dumbbell: senders—L—(bottleneck)—R—receivers.

    Edge links default to the bottleneck spec, so the middle link is the only
    constriction when every pair is active.
    """
    bottleneck = bottleneck or LinkSpec()
    edge = edge or bottleneck
    net = Network(sim, host_delay)
    left = net.add_switch("L")
    right = net.add_switch("R")
    fwd, rev = net.link(left, right, bottleneck)
    senders, receivers = [], []
    for i in range(n_pairs):
        s = net.add_host(f"s{i}")
        r = net.add_host(f"r{i}")
        net.link(s, left, edge)
        net.link(r, right, edge)
        senders.append(s)
        receivers.append(r)
    net.finalize()
    return Dumbbell(net, senders, receivers, fwd, rev)


@dataclass
class Star:
    """Hosts hanging off one switch (a single ToR)."""

    net: Network
    hosts: List[Host]
    switch: object


def single_switch(
    sim: Simulator,
    n_hosts: int,
    link: Optional[LinkSpec] = None,
    host_delay: Optional[HostDelayModel] = None,
) -> Star:
    """One ToR with ``n_hosts`` directly attached (Figs 1, 9, 17)."""
    link = link or LinkSpec()
    net = Network(sim, host_delay)
    tor = net.add_switch("tor")
    hosts = []
    for i in range(n_hosts):
        h = net.add_host(f"h{i}")
        net.link(h, tor, link)
        hosts.append(h)
    net.finalize()
    return Star(net, hosts, tor)


@dataclass
class ParkingLot:
    """Fig 10(a): Flow 0 crosses all N bottlenecks; flow i only link i."""

    net: Network
    long_src: Host
    long_dst: Host
    cross_srcs: List[Host]
    cross_dsts: List[Host]
    bottleneck_ports: List[Port]  # data-direction port of each bottleneck


def parking_lot(
    sim: Simulator,
    n_bottlenecks: int,
    link: Optional[LinkSpec] = None,
    host_delay: Optional[HostDelayModel] = None,
) -> ParkingLot:
    """Chain of ``n_bottlenecks`` links.

    Switch chain SW0—SW1—…—SWN.  The long flow runs SW0→SWN.  Cross flow i
    (i = 1..N) enters at SW(i-1) and exits at SW(i), so every chain link
    carries the long flow plus exactly one cross flow.
    """
    if n_bottlenecks < 1:
        raise ValueError("need at least one bottleneck")
    link = link or LinkSpec()
    net = Network(sim, host_delay)
    switches = [net.add_switch(f"sw{i}") for i in range(n_bottlenecks + 1)]
    bottleneck_ports = []
    for a, b in zip(switches, switches[1:]):
        fwd, _ = net.link(a, b, link)
        bottleneck_ports.append(fwd)
    long_src = net.add_host("long_src")
    long_dst = net.add_host("long_dst")
    net.link(long_src, switches[0], link)
    net.link(long_dst, switches[-1], link)
    cross_srcs, cross_dsts = [], []
    for i in range(n_bottlenecks):
        cs = net.add_host(f"xs{i}")
        cd = net.add_host(f"xd{i}")
        net.link(cs, switches[i], link)
        net.link(cd, switches[i + 1], link)
        cross_srcs.append(cs)
        cross_dsts.append(cd)
    net.finalize()
    return ParkingLot(net, long_src, long_dst, cross_srcs, cross_dsts, bottleneck_ports)


@dataclass
class MultiBottleneck:
    """Fig 11(a): Flow 0 single-bottlenecked, Flows 1..N doubly bottlenecked."""

    net: Network
    flow0_src: Host
    flow0_dst_hosts: List[Host]  # destination hosts, one per flow (0..N)
    cross_srcs: List[Host]
    link2_port: Port  # the shared bottleneck (data direction)


def multi_bottleneck(
    sim: Simulator,
    n_cross_flows: int,
    link: Optional[LinkSpec] = None,
    host_delay: Optional[HostDelayModel] = None,
) -> MultiBottleneck:
    """Fig 11(a): Flows 1..N share Link 1 then Link 2; Flow 0 joins at Link 2.

    With ideal max-min fairness every flow — including Flow 0 — should get
    1/(N+1) of Link 2.
    """
    link = link or LinkSpec()
    net = Network(sim, host_delay)
    sw_a = net.add_switch("swA")  # upstream of Link 1
    sw_b = net.add_switch("swB")  # between Link 1 and Link 2
    sw_c = net.add_switch("swC")  # downstream of Link 2
    net.link(sw_a, sw_b, link)          # Link 1
    link2_fwd, _ = net.link(sw_b, sw_c, link)  # Link 2 (shared bottleneck)
    flow0_src = net.add_host("f0src")
    net.link(flow0_src, sw_b, link)     # Link 3: Flow 0 enters at swB
    cross_srcs = []
    dsts = []
    d0 = net.add_host("f0dst")
    net.link(d0, sw_c, link)
    dsts.append(d0)
    for i in range(n_cross_flows):
        s = net.add_host(f"xs{i}")
        net.link(s, sw_a, link)
        d = net.add_host(f"xd{i}")
        net.link(d, sw_c, link)
        cross_srcs.append(s)
        dsts.append(d)
    net.finalize()
    return MultiBottleneck(net, flow0_src, dsts, cross_srcs, link2_fwd)

"""Golden-trace regression: canonical scenarios, digested and diffed.

A golden trace is a JSON fixture capturing, for each traced port of a
canonical small scenario, a SHA-256 digest over every
:class:`~repro.net.trace.TraceRecord` the port emitted, plus head/tail
excerpts for humans.  The engine, ports, queues, and transports are all
deterministic per seed, so any behavioral drift anywhere under a scenario's
footprint — event ordering, a queue discipline tweak, a pacing change —
flips a digest and fails the suite loudly, with the excerpt showing where
the streams diverge.

Regenerate after an *intentional* behavior change with::

    REPRO_REGEN_GOLDEN=1 python -m pytest tests/test_golden_traces.py -q

then review the fixture diff like any other code change.
"""

from __future__ import annotations

import hashlib
import json
import pathlib
from typing import Dict, List, Sequence

#: Formatted records kept verbatim in the fixture for human diffing.
EXCERPT_LINES = 5


def trace_lines(records: Sequence) -> List[str]:
    """Canonical one-line-per-packet rendering of TraceRecords."""
    return [f"{r.time_ps} {r.kind} {r.src}->{r.dst} "
            f"seq={r.seq} cseq={r.credit_seq} {r.wire_bytes}B"
            for r in records]


def trace_digest(records: Sequence) -> str:
    payload = "\n".join(trace_lines(records)).encode()
    return hashlib.sha256(payload).hexdigest()


def golden_payload(name: str, port_records: Dict[str, Sequence]) -> dict:
    """Digest a scenario's per-port traces into a JSON-able fixture body."""
    ports = {}
    for port_name in sorted(port_records):
        records = port_records[port_name]
        lines = trace_lines(records)
        ports[port_name] = {
            "packets": len(records),
            "digest": trace_digest(records),
            "head": lines[:EXCERPT_LINES],
            "tail": lines[-EXCERPT_LINES:] if len(lines) > EXCERPT_LINES else [],
        }
    return {
        "name": name,
        "total_packets": sum(p["packets"] for p in ports.values()),
        "ports": ports,
    }


def write_golden(path: pathlib.Path, payload: dict) -> None:
    path.parent.mkdir(parents=True, exist_ok=True)
    path.write_text(json.dumps(payload, indent=2, sort_keys=True) + "\n")


def load_golden(path: pathlib.Path) -> dict:
    return json.loads(path.read_text())


def diff_golden(expected: dict, actual: dict) -> List[str]:
    """Human-readable mismatches between two payloads; empty == identical."""
    diffs: List[str] = []
    exp_ports = expected.get("ports", {})
    act_ports = actual.get("ports", {})
    for port_name in sorted(set(exp_ports) | set(act_ports)):
        exp = exp_ports.get(port_name)
        act = act_ports.get(port_name)
        if exp is None:
            diffs.append(f"{port_name}: traced now but absent from golden")
            continue
        if act is None:
            diffs.append(f"{port_name}: in golden but not traced now")
            continue
        if exp["digest"] == act["digest"]:
            continue
        diffs.append(
            f"{port_name}: trace drifted "
            f"({exp['packets']} -> {act['packets']} packets)")
        for label, side in (("golden", exp), ("actual", act)):
            for line in side.get("head", []):
                diffs.append(f"    {label}: {line}")
    return diffs

"""repro.audit — runtime verification for every simulation run.

Two ways in:

*Explicit* — construct a :class:`NetworkAuditor`, attach networks, read the
:class:`AuditReport`::

    auditor = NetworkAuditor(sim, buffer_bound_bytes=bound)
    auditor.attach_network(topo.net)
    ...build flows, run...
    report = auditor.finalize()
    assert report.ok, report.format()

*Ambient* — activate auditing for a region of code (or set ``REPRO_AUDIT=1``
for a whole process); every :meth:`Network.finalize` inside it then attaches
an auditor automatically, and :func:`capture` collects the merged verdict::

    with audit.capture() as cap:
        run_experiment()
    print(audit.format_summary(cap.summary))

The ambient path is what ``repro.cli --audit`` and the
:mod:`repro.runtime` scheduler use: each sweep task runs inside a capture
(in its worker process, if parallel) and its summary dict travels back on
the :class:`~repro.runtime.scheduler.TaskResult`.

Captures nest like a stack: an inner capture removes its auditors from the
outer capture's view, so a CLI-level capture around a sweep does not double
count the per-task summaries the scheduler already collected.
"""

from __future__ import annotations

import os
from typing import List, Optional, Tuple

from repro.audit.auditor import NetworkAuditor
from repro.audit.report import (
    AuditReport,
    Violation,
    empty_summary,
    format_summary,
    merge_summaries,
)

__all__ = [
    "AuditReport", "NetworkAuditor", "Violation",
    "begin_capture", "capture", "end_capture", "is_active", "maybe_attach",
    "empty_summary", "format_summary", "merge_summaries",
    "record_summary", "record_task_summary", "reset_session",
    "session_summary",
]

_capture_depth = 0
_captured: List[NetworkAuditor] = []
#: (label, summary) pairs recorded by the sweep scheduler for CLI reporting.
_session: List[Tuple[str, dict]] = []


def is_active() -> bool:
    """True when auditors should attach: inside a capture or REPRO_AUDIT=1."""
    if _capture_depth > 0:
        return True
    return os.environ.get("REPRO_AUDIT", "") in ("1", "true")


def maybe_attach(net) -> Optional[NetworkAuditor]:
    """Attach an auditor to ``net`` if auditing is active (else no-op).

    Called by :meth:`repro.topology.network.Network.finalize`.  Reuses the
    simulator's existing auditor so multi-network simulations share one
    report.  Auditors are only retained for collection while a capture is
    open; under plain ``REPRO_AUDIT=1`` the auditor lives on ``sim.auditor``
    and nothing global accumulates.
    """
    if not is_active():
        return None
    auditor = getattr(net.sim, "auditor", None)
    if auditor is None:
        auditor = NetworkAuditor(net.sim)
        if _capture_depth > 0:
            _captured.append(auditor)
    auditor.attach_network(net)
    return auditor


def begin_capture() -> int:
    """Open a capture scope; returns a marker for :func:`end_capture`."""
    global _capture_depth
    _capture_depth += 1
    return len(_captured)


def end_capture(marker: int) -> dict:
    """Close a scope: finalize its auditors, return their merged summary."""
    global _capture_depth
    scoped = _captured[marker:]
    del _captured[marker:]
    _capture_depth = max(0, _capture_depth - 1)
    return merge_summaries([a.finalize().summary() for a in scoped])


class _Precomputed:
    """An already-merged summary posing as a capture-scoped auditor.

    Sharded runs (:mod:`repro.sim.parallel`) audit inside their worker
    processes and merge the shard summaries in the parent; this wrapper
    lets the merged dict ride the ordinary capture machinery, so
    :func:`end_capture` folds it in like any live auditor's report.
    """

    def __init__(self, summary: dict):
        self._summary = dict(summary)

    def finalize(self) -> "_Precomputed":
        return self

    def summary(self) -> dict:
        return self._summary


def record_summary(summary: dict) -> None:
    """Park a finished summary in the open capture (no-op outside one)."""
    if _capture_depth > 0:
        _captured.append(_Precomputed(summary))


class capture:
    """Context manager over begin/end_capture; ``.summary`` after exit."""

    summary: Optional[dict] = None

    def __enter__(self) -> "capture":
        self._marker = begin_capture()
        return self

    def __exit__(self, exc_type, exc, tb) -> bool:
        self.summary = end_capture(self._marker)
        return False


# -- session aggregation (scheduler -> CLI) ---------------------------------

def record_task_summary(label: str, summary: dict) -> None:
    """Scheduler hook: bank one task's audit summary for session reporting."""
    _session.append((label, summary))


def session_summary() -> dict:
    """Merged verdict over every task summary banked since the last reset."""
    return merge_summaries([s for _, s in _session])


def reset_session() -> None:
    _session.clear()

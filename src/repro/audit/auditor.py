"""The network auditor: cheap always-on observers for ExpressPass's laws.

:class:`NetworkAuditor` attaches observation-only probes to a simulation and
checks, continuously, the invariants the paper states unconditionally:

``clock-monotonicity``
    The integer-picosecond event clock never moves backwards (guards heap or
    scheduling corruption; :mod:`repro.sim.engine`).
``credit-rate``
    No port ever puts credits on the wire faster than the 84/1622 ≈ 5 %
    reservation plus its 2-credit burst (§3.1 "maximum bandwidth metering").
    Implemented as an independent token-bucket *mirror* with the same
    parameters as the port's real bucket, fed only by observed transmits —
    so a broken or tampered bucket in :mod:`repro.net.port` is caught by
    construction.
``buffer-bound``
    Data-queue occupancy never exceeds a configured bound (defaults to the
    port's physical capacity; tests pass the Table 1 zero-loss bound from
    :mod:`repro.calculus` to make the check sharp).
``packet-conservation`` / ``credit-conservation``
    Per port: every packet that hit the wire was enqueued exactly once and
    vice versa (minus what still sits in the queue).  Per ExpressPass flow,
    at quiescence: ``credits_sent == credits_received + credit_drops`` —
    a *silently* lost credit (fault injection, a buggy drop path) breaks
    this even though every accounted drop keeps it intact.
``path-symmetry``
    The set of links credits traversed is the exact reverse of the links
    data traversed (§3.1); a flow hashed asymmetrically is named.
``completion-exactness``
    A completed finite flow delivered exactly ``size_bytes``; a drained
    simulation leaves no started, unstopped flow incomplete.

Observers never consume randomness, never schedule events, and never touch
simulation state — audited runs are bit-identical to unaudited runs
(asserted by differential tests).  Violations carry a short transmit trace
from the offending port's ring buffer, reusing
:class:`repro.net.trace.TraceRecord`.
"""

from __future__ import annotations

from collections import deque
from typing import Dict, List, Optional, Set, Tuple

from repro.audit.report import AuditReport
from repro.net.packet import (
    CREDIT_RATE_FRACTION_DEN,
    CREDIT_RATE_FRACTION_NUM,
    CREDIT_WIRE_MAX,
    Packet,
    PacketKind,
)
from repro.net.queues import TokenBucket
from repro.net.trace import TraceRecord

#: Float slack (wire bytes) between the port's token bucket and the audit
#: mirror, absorbing refill-order rounding differences.  The smallest
#: meaningful over-drain is one 84 B credit, so a couple of bytes is safe.
METER_SLACK_BYTES = 2.0


def _queue_totals(queue) -> Tuple[int, int]:
    """(enqueued, dropped) for a CreditQueue or ClassifiedCreditQueues."""
    try:
        return queue.stats.enqueued, queue.stats.dropped
    except AttributeError:
        subqueues = queue.queues.values()
        return (sum(q.stats.enqueued for q in subqueues),
                sum(q.stats.dropped for q in subqueues))


class _PortAudit:
    """Per-port probe: transmit meter mirror, trace ring, enqueue bound."""

    __slots__ = ("auditor", "port", "mirror", "ring",
                 "data_tx", "credit_tx", "_prev_transmit", "_prev_enqueue")

    def __init__(self, auditor: "NetworkAuditor", port, keep: int):
        self.auditor = auditor
        self.port = port
        credit_rate = (port.rate_bps * CREDIT_RATE_FRACTION_NUM
                       // CREDIT_RATE_FRACTION_DEN)
        self.mirror = TokenBucket(
            credit_rate, burst_bytes=2 * CREDIT_WIRE_MAX + METER_SLACK_BYTES)
        self.ring: deque = deque(maxlen=keep)
        self.data_tx = 0
        self.credit_tx = 0
        # Chain, never replace: a PortTracer (or another auditor) installed
        # earlier keeps seeing every packet.
        self._prev_transmit = port.on_transmit
        port.on_transmit = self.on_transmit
        self._prev_enqueue = port.on_enqueue
        port.on_enqueue = self.on_enqueue

    def trace_tail(self) -> Tuple[str, ...]:
        return tuple(str(r) for r in self.ring)

    # -- wire-side observer -------------------------------------------------
    def on_transmit(self, pkt: Packet) -> None:
        if self._prev_transmit is not None:
            self._prev_transmit(pkt)
        auditor = self.auditor
        report = auditor.report
        now = self.port.sim.now
        self.ring.append(TraceRecord(
            time_ps=now, kind=PacketKind(pkt.kind).name, src=pkt.src,
            dst=pkt.dst, seq=pkt.seq, credit_seq=pkt.credit_seq,
            wire_bytes=pkt.wire_bytes))
        report.count("transmits")
        if pkt.is_credit:
            self.credit_tx += 1
            report.count("credits_metered")
            if not self.mirror.try_consume(pkt.wire_bytes, now):
                report.add(
                    "credit-rate", self.port.name, now,
                    f"credit of {pkt.wire_bytes}B exceeds the "
                    f"{CREDIT_RATE_FRACTION_NUM}/{CREDIT_RATE_FRACTION_DEN} "
                    f"rate reservation (mirror tokens "
                    f"{self.mirror.tokens:.1f}B; burst allowance "
                    f"{2 * CREDIT_WIRE_MAX}B) — oversized burst or broken "
                    f"port meter",
                    trace=self.trace_tail())
                # Keep the mirror sane so one systematic leak is reported
                # as repeats of a single offense, not cascading debt.
                self.mirror.tokens = 0.0
        else:
            self.data_tx += 1
        flow = pkt.flow
        if flow is not None:
            link = (self.port.node.id, self.port.peer.id)
            if pkt.kind == PacketKind.DATA:
                auditor.flow_links(flow)[0].add(link)
            elif pkt.is_credit:
                auditor.flow_links(flow)[1].add(link)

    # -- queue-side observer ------------------------------------------------
    def on_enqueue(self, pkt: Packet, accepted: bool) -> None:
        if self._prev_enqueue is not None:
            self._prev_enqueue(pkt, accepted)
        report = self.auditor.report
        report.count("enqueues")
        if pkt.is_credit or pkt.low_priority or not accepted:
            return
        bound = self.auditor.buffer_bound_bytes
        occupancy = self.port.data_queue.bytes
        limit = bound if bound is not None else self.port.data_queue.capacity_bytes
        if occupancy > limit:
            kind = ("configured (Table 1) bound" if bound is not None
                    else "physical capacity")
            report.add(
                "buffer-bound", self.port.name, self.port.sim.now,
                f"data queue holds {occupancy}B > {limit}B {kind}",
                trace=self.trace_tail())

    # -- end-of-run bookkeeping --------------------------------------------
    def finalize(self) -> None:
        report = self.auditor.report
        port = self.port
        dq = port.data_queue
        expected_data = dq.stats.enqueued - len(dq)
        if port.lowprio_queue is not None:
            lq = port.lowprio_queue
            expected_data += lq.stats.enqueued - len(lq)
        if self.data_tx != expected_data:
            report.add(
                "packet-conservation", port.name, port.sim.now,
                f"{self.data_tx} data packets hit the wire but "
                f"{expected_data} left the queues (enqueued minus resident)",
                trace=self.trace_tail())
        enqueued, _ = _queue_totals(port.credit_queue)
        expected_credit = enqueued - len(port.credit_queue)
        if self.credit_tx != expected_credit:
            report.add(
                "credit-conservation", port.name, port.sim.now,
                f"{self.credit_tx} credits hit the wire but "
                f"{expected_credit} left the credit queue",
                trace=self.trace_tail())


class NetworkAuditor:
    """Attaches probes across a simulation and aggregates an AuditReport.

    One auditor serves one :class:`~repro.sim.engine.Simulator` (it installs
    itself as ``sim.auditor``); attach any number of networks to it.  Flows
    self-register at construction via ``sim.auditor``.

    Parameters
    ----------
    sim:
        The simulator to watch.
    keep:
        Transmit-trace ring size per port (context for first offenses).
    buffer_bound_bytes:
        Data-queue occupancy bound checked on every enqueue.  ``None``
        checks against each queue's physical capacity (an accounting
        tripwire); pass a Table 1 bound to assert the paper's zero-loss
        guarantee sharply.
    """

    def __init__(self, sim, keep: int = 32,
                 buffer_bound_bytes: Optional[int] = None):
        existing = getattr(sim, "auditor", None)
        if existing is not None and existing is not self:
            raise RuntimeError("simulator already has an auditor attached")
        self.sim = sim
        self.report = AuditReport()
        self.buffer_bound_bytes = buffer_bound_bytes
        self.keep = keep
        self._ports: Dict[int, _PortAudit] = {}   # id(port) -> probe
        self._flows: List[object] = []
        self._flow_links: Dict[int, Tuple[Set, Set]] = {}  # fid -> (data, credit)
        self._last_event_ps: Optional[int] = None
        self._finalized = False
        #: When True, :meth:`finalize` skips the per-flow quiescence checks.
        #: Sharded execution sets this in each worker: a single shard sees
        #: only its own half of a flow's counters, so the checks run once,
        #: centrally, over merged :meth:`flow_accounts`.
        self.defer_flow_checks = False
        sim.auditor = self

    # -- engine observer ----------------------------------------------------
    def on_event(self, time_ps: int) -> None:
        """Called by the event loop for every dispatched event."""
        self.report.count("events")
        last = self._last_event_ps
        if last is not None and time_ps < last:
            self.report.add(
                "clock-monotonicity", "simulator", time_ps,
                f"event dispatched at t={time_ps}ps after t={last}ps — "
                f"the integer-picosecond clock moved backwards")
        self._last_event_ps = time_ps

    # -- attachment ---------------------------------------------------------
    def attach_network(self, net) -> "NetworkAuditor":
        for port in net.ports:
            self.attach_port(port)
        return self

    def attach_port(self, port) -> None:
        if id(port) in self._ports:
            return
        self._ports[id(port)] = _PortAudit(self, port, self.keep)
        self.report.count("ports")

    def register_flow(self, flow) -> None:
        self._flows.append(flow)
        self.report.count("flows")

    def on_credit_rate_change(self, port, rate_bps: int) -> None:
        """Track an *authorized* credit-meter reconfiguration (chaos
        ``credit_meter`` faults).  The mirror follows the configured rate —
        the injected misconfiguration itself is budgeted fault-plane
        behaviour, while a port transmitting faster than even its (mis)
        configured meter allows is still a violation."""
        probe = self._ports.get(id(port))
        if probe is None:
            return
        probe.mirror.set_rate(rate_bps, self.sim.now)
        self.report.count("credit_rate_reconfigs")

    def flow_links(self, flow) -> Tuple[Set, Set]:
        links = self._flow_links.get(flow.fid)
        if links is None:
            links = (set(), set())
            self._flow_links[flow.fid] = links
        return links

    # -- end-of-run checks --------------------------------------------------
    def finalize(self) -> AuditReport:
        """Run the quiescence checks; idempotent, returns the report."""
        if self._finalized:
            return self.report
        self._finalized = True
        for probe in self._ports.values():
            probe.finalize()
        drained = self.sim.pending() == 0
        if not self.defer_flow_checks:
            for flow in self._flows:
                self._check_flow(flow, drained)
        return self.report

    def _flow_account(self, flow) -> dict:
        """One flow's audited counters as plain data.

        The quiescence checks consume these accounts rather than live flow
        objects, so a sharded run can ship each replica's account across
        process boundaries, merge them counter-wise, and run the identical
        checks (:func:`check_flow_account`) on the reconstructed totals.
        """
        chaos = getattr(self.sim, "chaos", None)
        data_links, credit_links = self._flow_links.get(flow.fid,
                                                        (set(), set()))
        return {
            "fid": flow.fid,
            "subject": repr(flow),
            "data_links": sorted(data_links),
            "credit_links": sorted(credit_links),
            "credits_sent": getattr(flow, "credits_sent", None),
            "credits_received": getattr(flow, "credits_received", 0),
            "credit_drops": flow.credit_drops,
            "injected_credit_drops": (chaos.injected_credit_drops(flow.fid)
                                      if chaos is not None else 0),
            "size_bytes": flow.size_bytes,
            "bytes_delivered": flow.bytes_delivered,
            "completed": flow.completed,
            "started": getattr(flow, "_started", False),
            "stopped": getattr(flow, "_stopped", False),
        }

    def flow_accounts(self) -> List[dict]:
        """Accounts for every registered flow, in registration order."""
        return [self._flow_account(flow) for flow in self._flows]

    def _check_flow(self, flow, drained: bool) -> None:
        chaos = getattr(self.sim, "chaos", None)
        check_flow_account(
            self.report, self._flow_account(flow), drained, self.sim.now,
            topology_changed=chaos is not None and chaos.topology_changed,
            affected_links=(chaos.affected_links if chaos is not None
                            else frozenset()))


def check_flow_account(report: AuditReport, account: dict, drained: bool,
                       now: int, topology_changed: bool = False,
                       affected_links=frozenset()) -> None:
    """The per-flow quiescence checks, over a plain-data account.

    Single source of truth for serial (:meth:`NetworkAuditor._check_flow`)
    and sharded (merged-account) auditing — both paths produce identical
    invariant names and messages for identical totals.
    """
    subject = account["subject"]
    data_links = {tuple(link) for link in account["data_links"]}
    credit_links = {tuple(link) for link in account["credit_links"]}
    if topology_changed:
        # A flow that lived through a routing reconvergence took one
        # path before the change and another after it; the whole-run
        # set comparison below cannot distinguish that from a genuine
        # asymmetric hash, so the check is skipped (and counted) when
        # the fault plan changed the topology.  Loss/jitter/meter-only
        # plans keep it fully armed.
        data_links = credit_links = set()
        report.count("path_symmetry_skipped_chaos")
    elif data_links and credit_links:
        # Links an active fault plan touched are excused: during a
        # blackhole window one direction can legitimately cross a link
        # whose mirror is dead (both orientations are excused).
        if affected_links:
            data_links = {l for l in data_links if l not in affected_links}
            credit_links = {l for l in credit_links
                            if l not in affected_links}
    if data_links and credit_links:
        reversed_credit = {(b, a) for (a, b) in credit_links}
        if data_links != reversed_credit:
            stray = sorted(reversed_credit - data_links)
            missing = sorted(data_links - reversed_credit)
            report.add(
                "path-symmetry", subject, now,
                f"credit path is not the reverse of the data path "
                f"(§3.1): credits crossed reversed-links {stray} not on "
                f"the data path; data links {missing} saw no credits")
    # Credit conservation holds only at quiescence: a run cut mid-flight
    # legitimately has credits on the wire.
    sent = account["credits_sent"]
    if drained and sent is not None:
        injected = account["injected_credit_drops"]
        received = account["credits_received"]
        drops = account["credit_drops"]
        accounted = received + drops + injected
        if sent != accounted:
            budget = (f" + {injected} chaos-injected" if injected else "")
            report.add(
                "credit-conservation", subject, now,
                f"{sent} credits sent but only {accounted} accounted "
                f"({received} received + "
                f"{drops} dropped{budget}) — "
                f"{sent - accounted} lost silently")
    if account["size_bytes"] is not None:
        if (account["completed"]
                and account["bytes_delivered"] != account["size_bytes"]):
            report.add(
                "completion-exactness", subject, now,
                f"flow completed having delivered "
                f"{account['bytes_delivered']}B of {account['size_bytes']}B")
        elif (drained and not account["completed"]
                and account["started"]
                and not account["stopped"]):
            report.add(
                "completion-exactness", subject, now,
                f"simulation drained but the flow delivered only "
                f"{account['bytes_delivered']}B of {account['size_bytes']}B")

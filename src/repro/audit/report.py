"""Violation records and the :class:`AuditReport` aggregate.

A violation is one *broken invariant* on one *subject* (a port, a flow, or
the simulator clock).  Reports deduplicate repeat offenses: the first
occurrence keeps its timestamp, message, and a short packet trace captured
from the offending port's ring buffer (reusing
:class:`repro.net.trace.TraceRecord` formatting); later occurrences only
bump a counter.  That keeps an audited run with a systematic bug — say a
mis-sized token bucket leaking thousands of credits — readable instead of
drowning the report in one line per packet.

Reports cross process boundaries as plain dicts (:meth:`AuditReport.summary`)
so :mod:`repro.runtime` can ship audit verdicts from pool workers back to the
parent alongside task values.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence, Tuple


@dataclass
class Violation:
    """One broken invariant on one subject; repeats bump ``count``."""

    invariant: str        # e.g. "credit-rate", "buffer-bound"
    subject: str          # port name, flow repr, or "simulator"
    time_ps: int          # first-offense timestamp
    message: str          # pointed, human-readable description
    count: int = 1
    trace: Tuple[str, ...] = ()  # formatted TraceRecords around the offense

    def format(self) -> str:
        head = (f"[{self.invariant}] {self.subject} @t={self.time_ps}ps: "
                f"{self.message}")
        if self.count > 1:
            head += f" (x{self.count})"
        lines = [head]
        lines.extend(f"    | {line}" for line in self.trace)
        return "\n".join(lines)

    def as_dict(self) -> dict:
        return {
            "invariant": self.invariant,
            "subject": self.subject,
            "time_ps": self.time_ps,
            "message": self.message,
            "count": self.count,
            "trace": list(self.trace),
        }


@dataclass
class AuditReport:
    """All violations plus how much checking actually happened.

    ``checks`` counts work performed (events observed, packets metered,
    enqueues bounded, ports and flows covered) so a "0 violations" verdict
    can be distinguished from "0 observers attached".
    """

    violations: List[Violation] = field(default_factory=list)
    checks: Dict[str, int] = field(default_factory=dict)
    _first: Dict[Tuple[str, str], Violation] = field(
        default_factory=dict, repr=False)

    @property
    def ok(self) -> bool:
        return not self.violations

    def count(self, name: str, amount: int = 1) -> None:
        self.checks[name] = self.checks.get(name, 0) + amount

    def add(self, invariant: str, subject: str, time_ps: int, message: str,
            trace: Sequence[str] = ()) -> None:
        """Record a violation; repeats of (invariant, subject) only count."""
        key = (invariant, subject)
        first = self._first.get(key)
        if first is not None:
            first.count += 1
            return
        violation = Violation(invariant, subject, time_ps, message,
                              trace=tuple(trace))
        self._first[key] = violation
        self.violations.append(violation)

    def summary(self) -> dict:
        """Plain-dict form: picklable, JSON-able, mergeable across runs."""
        return {
            "ok": self.ok,
            "violations": [v.as_dict() for v in self.violations],
            "checks": dict(self.checks),
            "runs": 1,
        }

    def format(self) -> str:
        if self.ok:
            return "audit: OK ({})".format(_format_checks(self.checks))
        lines = [f"audit: {len(self.violations)} violation(s) "
                 f"({_format_checks(self.checks)})"]
        lines.extend(v.format() for v in self.violations)
        return "\n".join(lines)


def empty_summary() -> dict:
    return {"ok": True, "violations": [], "checks": {}, "runs": 0}


def merge_summaries(summaries: Sequence[Optional[dict]]) -> dict:
    """Fold per-run summaries (dropping ``None``) into one session verdict."""
    merged = empty_summary()
    for summary in summaries:
        if not summary:
            continue
        merged["runs"] += summary.get("runs", 1)
        merged["violations"].extend(summary.get("violations", ()))
        for name, value in summary.get("checks", {}).items():
            merged["checks"][name] = merged["checks"].get(name, 0) + value
    merged["ok"] = not merged["violations"]
    return merged


def format_summary(summary: dict) -> str:
    """Render a (possibly merged) summary dict for terminal output."""
    checks = _format_checks(summary.get("checks", {}))
    runs = summary.get("runs", 0)
    violations = summary.get("violations", [])
    head = (f"audit: {runs} audited run(s), {checks}, "
            f"{len(violations)} violation(s)")
    lines = [head]
    for v in violations:
        entry = (f"  [{v['invariant']}] {v['subject']} "
                 f"@t={v['time_ps']}ps: {v['message']}")
        if v.get("count", 1) > 1:
            entry += f" (x{v['count']})"
        lines.append(entry)
        lines.extend(f"      | {t}" for t in v.get("trace", ()))
    return "\n".join(lines)


def _format_checks(checks: Dict[str, int]) -> str:
    if not checks:
        return "no checks performed"
    order = ("events", "transmits", "enqueues", "credits_metered",
             "ports", "flows")
    parts = [f"{checks[k]} {k}" for k in order if k in checks]
    parts.extend(f"{v} {k}" for k, v in sorted(checks.items())
                 if k not in order)
    return ", ".join(parts)

"""repro.obs — unified metrics, flow-span tracing, and exporters.

One observability plane for every simulation run.  Three layers:

*Registry* — :class:`MetricsRegistry` holds named counters, gauges,
log-bucketed histograms, and time series; it attaches to a
:class:`~repro.sim.engine.Simulator` (``sim.metrics``), polls queue/transmit
statistics from the network's ports on periodic snapshots, and gives every
flow a :class:`FlowSpan` lifecycle timeline (start → first credit → first
data → stop → completion, plus credit round-trip samples).

*Activation* — off by default; a run with metrics disabled schedules no
snapshot events and takes a single ``is None`` branch per instrumentation
point, so golden traces stay bit-identical.  Turn it on explicitly
(:meth:`MetricsRegistry.attach`), ambiently (:func:`capture`, used by
``repro run --metrics`` / ``repro obs``), or process-wide
(``REPRO_METRICS=1``).  Inside an active scope every
:meth:`Network.finalize` wires the network into the simulator's registry
automatically via :func:`maybe_attach`.

*Export* — :mod:`repro.obs.export` writes the registry summary as a JSONL
event stream, CSV time series, or Prometheus text, and dumps
:class:`~repro.net.trace.PortTracer` records as pcap-lite JSONL; the
:mod:`repro.obs.dashboard` renders live sparkline panels during long runs.

Captures nest like :mod:`repro.audit`'s: the :mod:`repro.runtime` scheduler
opens one per sweep task (in the worker process, if parallel) and ships the
summary dict back on ``TaskResult.metrics``; an outer CLI capture does not
double count registries an inner capture already claimed.

A fourth, orthogonal plane lives in :mod:`repro.obs.trace`: cross-layer
*causal* tracing (wall-clock and sim-clock spans across the runtime
scheduler, shard window loop, matrix cells, and sim phases), activated by
``--trace``/``REPRO_TRACE`` and exported as validated JSONL plus
Chrome/Perfetto JSON.  Metrics aggregate *what* the simulation did; the
trace shows *where the wall-clock time went* doing it.
"""

from __future__ import annotations

import os
from typing import List, Optional, Tuple

from repro.obs.registry import (
    Counter,
    Gauge,
    Histogram,
    MetricsRegistry,
    Series,
    empty_summary,
    format_summary,
    merge_summaries,
)
from repro.obs.spans import FlowSpan

__all__ = [
    "Counter", "FlowSpan", "Gauge", "Histogram", "MetricsRegistry", "Series",
    "begin_capture", "capture", "default_interval_ps", "end_capture",
    "is_active", "maybe_attach",
    "empty_summary", "format_summary", "merge_summaries",
    "record_summary", "record_task_summary", "reset_session",
    "session_summary",
]

_capture_depth = 0
_captured: List[MetricsRegistry] = []
#: Options of the innermost open capture (dashboard stream, tracing flag).
_opts: List[dict] = []
#: (label, summary) pairs recorded by the sweep scheduler for CLI reporting.
_session: List[Tuple[str, dict]] = []


def is_active() -> bool:
    """True when metrics should attach: inside a capture or REPRO_METRICS=1."""
    if _capture_depth > 0:
        return True
    return os.environ.get("REPRO_METRICS", "") in ("1", "true")


def default_interval_ps() -> Optional[int]:
    """Snapshot interval override from ``REPRO_METRICS_INTERVAL_PS``."""
    raw = os.environ.get("REPRO_METRICS_INTERVAL_PS", "")
    if raw:
        try:
            return max(1, int(raw))
        except ValueError:
            pass
    return None


def maybe_attach(net) -> Optional[MetricsRegistry]:
    """Attach a registry to ``net`` if metrics are active (else no-op).

    Called by :meth:`repro.topology.network.Network.finalize`.  Reuses the
    simulator's existing registry so multi-network simulations share one
    summary, starts periodic snapshots on first attach, and honours the
    innermost capture's dashboard/trace options.
    """
    if not is_active():
        return None
    reg = getattr(net.sim, "metrics", None)
    fresh = reg is None
    if fresh:
        reg = MetricsRegistry.attach(net.sim,
                                     snapshot_interval_ps=default_interval_ps())
    reg.attach_network(net)
    opts = _opts[-1] if _opts else {}
    if opts.get("trace"):
        reg.trace_network(net)
    if fresh:
        if opts.get("dashboard") is not None:
            from repro.obs.dashboard import Dashboard
            Dashboard(reg, opts["dashboard"])
        reg.start_snapshots()
    return reg


def _note_registry(reg: MetricsRegistry) -> None:
    """Claim an explicitly-attached registry for the open capture, if any."""
    if _capture_depth > 0 and reg not in _captured:
        _captured.append(reg)


def begin_capture(**opts) -> int:
    """Open a capture scope; returns a marker for :func:`end_capture`.

    ``opts`` (``dashboard=<stream>``, ``trace=True``) apply to registries
    created inside this scope.
    """
    global _capture_depth
    _capture_depth += 1
    _opts.append(opts)
    return len(_captured)


def end_capture(marker: int) -> Tuple[dict, List[MetricsRegistry]]:
    """Close a scope: finalize its registries, return (summary, registries)."""
    global _capture_depth
    scoped = _captured[marker:]
    del _captured[marker:]
    _capture_depth = max(0, _capture_depth - 1)
    if _opts:
        _opts.pop()
    return merge_summaries([r.summary() for r in scoped]), scoped


class _Precomputed:
    """An already-merged summary posing as a capture-scoped registry.

    Sharded runs (:mod:`repro.sim.parallel`) collect metrics inside their
    worker processes and merge the shard summaries in the parent; this
    wrapper lets the merged dict ride the capture machinery.  ``tracers``
    is empty: per-packet traces stay in the workers.
    """

    tracers: tuple = ()

    def __init__(self, summary: dict):
        self._summary = dict(summary)

    def summary(self) -> dict:
        return self._summary


def record_summary(summary: dict) -> None:
    """Park a finished summary in the open capture (no-op outside one)."""
    if _capture_depth > 0:
        _captured.append(_Precomputed(summary))


class capture:
    """Context manager over begin/end_capture.

    After exit, ``.summary`` holds the merged summary dict and
    ``.registries`` the finalized registries (for e.g. pcap-lite export of
    their tracers).
    """

    summary: Optional[dict] = None

    def __init__(self, **opts):
        self._capture_opts = opts
        self.registries: List[MetricsRegistry] = []

    def __enter__(self) -> "capture":
        self._marker = begin_capture(**self._capture_opts)
        return self

    def __exit__(self, exc_type, exc, tb) -> bool:
        self.summary, self.registries = end_capture(self._marker)
        return False


# -- session aggregation (scheduler -> CLI) ---------------------------------

def record_task_summary(label: str, summary: dict) -> None:
    """Scheduler hook: bank one task's metrics summary for CLI reporting."""
    _session.append((label, summary))


def session_summary() -> dict:
    """Merged summary over every task summary banked since the last reset."""
    return merge_summaries([s for _, s in _session])


def reset_session() -> None:
    _session.clear()

"""Metric primitives and the per-simulation registry.

A :class:`MetricsRegistry` hangs off ``Simulator.metrics`` and collects four
kinds of signal:

* **Counters / gauges / histograms** — named, created on demand.  Histograms
  are log-bucketed (powers of two) so a flow-completion-time distribution
  costs O(60) ints no matter how many flows complete.
* **Time series** — each :class:`Series` carries its own timestamps, fed
  either by periodic *snapshots* (the registry polls registered source
  callables) or by the :mod:`repro.metrics.timeseries` samplers mirroring
  their readings in.
* **Flow spans** (:mod:`repro.obs.spans`) — per-flow lifecycle timelines.
* **Port aggregates** — the registry does *not* hook the per-packet path.
  Ports and queues already maintain exact counters
  (:class:`~repro.net.port.PortStats`, ``_QueueStats``); the registry reads
  them at snapshot/finalize time, so enabling metrics leaves the transmit
  fast path intact.  The one event-driven signal with no existing counter is
  credit throttling: ports bump ``registry.credit_throttled`` directly from
  their (rare) bucket-sleep branch.

Snapshots are self-limiting: the periodic snapshot event re-arms only while
*other* events remain pending, so a run-to-quiescence ``sim.run()`` still
terminates, and :meth:`MetricsRegistry.finalize` captures one last snapshot
at whatever time the run stopped.
"""

from __future__ import annotations

from typing import Callable, Dict, List, Optional, Sequence

from repro.sim.units import MS

#: Ambient snapshot cadence (overridable via ``REPRO_METRICS_INTERVAL_PS``).
DEFAULT_SNAPSHOT_INTERVAL_PS = 1 * MS


class Counter:
    """A named monotonically-increasing integer."""

    __slots__ = ("name", "value")

    def __init__(self, name: str, value: int = 0):
        self.name = name
        self.value = value

    def inc(self, n: int = 1) -> None:
        self.value += n

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"<Counter {self.name}={self.value}>"


class Gauge:
    """A named last-value-wins number."""

    __slots__ = ("name", "value")

    def __init__(self, name: str, value: float = 0.0):
        self.name = name
        self.value = value

    def set(self, value: float) -> None:
        self.value = value

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"<Gauge {self.name}={self.value}>"


class Histogram:
    """Log-bucketed (base-2) histogram of non-negative samples.

    Bucket ``b`` holds values ``v`` with ``v.bit_length() == b``, i.e.
    ``[2**(b-1), 2**b)`` for ``b >= 1`` and exactly 0 for ``b == 0`` — about
    60 buckets cover the whole picosecond range.  Exact count/sum/min/max
    ride alongside, so only percentiles are approximate (reported at bucket
    upper edges, clamped to the observed min/max).
    """

    __slots__ = ("name", "count", "total", "vmin", "vmax", "buckets")

    def __init__(self, name: str):
        self.name = name
        self.count = 0
        self.total = 0
        self.vmin: Optional[int] = None
        self.vmax: Optional[int] = None
        self.buckets: Dict[int, int] = {}

    def record(self, value) -> None:
        v = int(value)
        if v < 0:
            v = 0
        b = v.bit_length()
        self.buckets[b] = self.buckets.get(b, 0) + 1
        self.count += 1
        self.total += v
        if self.vmin is None or v < self.vmin:
            self.vmin = v
        if self.vmax is None or v > self.vmax:
            self.vmax = v

    def percentile(self, pct: float) -> Optional[int]:
        """Approximate percentile: the upper edge of the covering bucket."""
        if not self.count:
            return None
        target = max(1, -(-self.count * pct // 100))  # ceil
        cum = 0
        for b in sorted(self.buckets):
            cum += self.buckets[b]
            if cum >= target:
                edge = 0 if b == 0 else (1 << b) - 1
                return max(self.vmin, min(self.vmax, edge))
        return self.vmax  # pragma: no cover - cum always reaches count

    def mean(self) -> Optional[float]:
        return self.total / self.count if self.count else None

    def as_dict(self) -> dict:
        return {
            "count": self.count,
            "sum": self.total,
            "min": self.vmin,
            "max": self.vmax,
            "buckets": {str(b): n for b, n in sorted(self.buckets.items())},
        }

    @classmethod
    def from_dict(cls, name: str, data: dict) -> "Histogram":
        h = cls(name)
        h.count = int(data.get("count", 0))
        h.total = int(data.get("sum", 0))
        h.vmin = data.get("min")
        h.vmax = data.get("max")
        h.buckets = {int(b): int(n)
                     for b, n in (data.get("buckets") or {}).items()}
        return h

    def merge_dict(self, data: dict) -> None:
        """Fold a shipped ``as_dict`` summary into this histogram."""
        self.count += int(data.get("count", 0))
        self.total += int(data.get("sum", 0))
        for field in ("min", "max"):
            v = data.get(field)
            if v is None:
                continue
            if field == "min":
                self.vmin = v if self.vmin is None else min(self.vmin, v)
            else:
                self.vmax = v if self.vmax is None else max(self.vmax, v)
        for b, n in (data.get("buckets") or {}).items():
            b = int(b)
            self.buckets[b] = self.buckets.get(b, 0) + int(n)


class Series:
    """One named time series; timestamps and values stay aligned."""

    __slots__ = ("name", "times_ps", "values")

    def __init__(self, name: str):
        self.name = name
        self.times_ps: List[int] = []
        self.values: List[float] = []

    def append(self, t_ps: int, value) -> None:
        self.times_ps.append(t_ps)
        self.values.append(value)

    def __len__(self) -> int:
        return len(self.times_ps)


class _FlowRateSampler:
    """Periodic cwnd/rate series for explicitly tracked flows.

    Samples whatever rate signal the flow exposes: ExpressPass's
    ``current_rate_bps``, a :class:`~repro.transport.base.RateFlow`'s
    ``rate_bps``, else a window flow's ``cwnd`` (in segments).
    """

    def __init__(self, registry: "MetricsRegistry", flows: Sequence,
                 interval_ps: int, name_prefix: str = "rate"):
        self.sim = registry.sim
        self.flows = list(flows)
        self.interval_ps = interval_ps
        self._series = {}
        for f in self.flows:
            unit = ("bps" if hasattr(f, "current_rate_bps")
                    or hasattr(f, "rate_bps") else "cwnd")
            self._series[f] = registry.add_series(
                f"{name_prefix}.f{f.fid}_{unit}")
        self._event = self.sim.schedule(interval_ps, self._tick)

    @staticmethod
    def _read(flow) -> float:
        v = getattr(flow, "current_rate_bps", None)
        if v is not None:
            return v
        v = getattr(flow, "rate_bps", None)
        if v is not None:
            return v
        return getattr(flow, "cwnd", 0.0)

    def _sample(self) -> None:
        now = self.sim.now
        for f in self.flows:
            self._series[f].append(now, self._read(f))

    def _tick(self) -> None:
        self._sample()
        self._event = self.sim.schedule(self.interval_ps, self._tick)

    def stop(self) -> None:
        if self._event is None:
            return
        self._event.cancel()
        self._event = None


class MetricsRegistry:
    """All observability state for one simulator.  See module docstring."""

    def __init__(self, sim, snapshot_interval_ps: Optional[int] = None):
        self.sim = sim
        self.counters: Dict[str, Counter] = {}
        self.gauges: Dict[str, Gauge] = {}
        self.histograms: Dict[str, Histogram] = {}
        self.series: Dict[str, Series] = {}
        #: Flow lifecycle event log: (t_ps, event, fid) tuples in emit order.
        self.events: List[tuple] = []
        self.spans: List = []
        self.ports: List = []
        self.tracers: List = []
        #: Bumped directly by ports when only credits wait and the token
        #: bucket is short (the transmitter sleep branch).
        self.credit_throttled = 0
        self.snapshot_interval_ps = (DEFAULT_SNAPSHOT_INTERVAL_PS
                                     if snapshot_interval_ps is None
                                     else snapshot_interval_ps)
        self.snapshots_taken = 0
        #: Optional hook fired after each snapshot (the dashboard chains it).
        self.on_snapshot: Optional[Callable] = None
        self._snapshot_sources: List[tuple] = []  # (Series, callable)
        self._snapshot_event = None
        self._samplers: List = []
        self._have_port_sources = False
        self._finalized = False

    @classmethod
    def attach(cls, sim, snapshot_interval_ps: Optional[int] = None
               ) -> "MetricsRegistry":
        """The simulator's registry, created (and claimed by any open
        :func:`repro.obs.capture`) on first use."""
        reg = getattr(sim, "metrics", None)
        if reg is None:
            reg = cls(sim, snapshot_interval_ps)
            sim.metrics = reg
            from repro import obs
            obs._note_registry(reg)
        return reg

    # -- named instruments --------------------------------------------------
    def counter(self, name: str) -> Counter:
        c = self.counters.get(name)
        if c is None:
            c = self.counters[name] = Counter(name)
        return c

    def gauge(self, name: str) -> Gauge:
        g = self.gauges.get(name)
        if g is None:
            g = self.gauges[name] = Gauge(name)
        return g

    def histogram(self, name: str) -> Histogram:
        h = self.histograms.get(name)
        if h is None:
            h = self.histograms[name] = Histogram(name)
        return h

    def add_series(self, name: str) -> Series:
        s = self.series.get(name)
        if s is None:
            s = self.series[name] = Series(name)
        return s

    def add_source(self, name: str, fn: Callable[[], float]) -> Series:
        """Register a callable polled into ``name`` at every snapshot."""
        series = self.add_series(name)
        self._snapshot_sources.append((series, fn))
        return series

    # -- flows and spans ----------------------------------------------------
    def register_flow(self, flow):
        """Open a :class:`FlowSpan` for ``flow`` (``Flow.__init__`` calls
        this when ``sim.metrics`` exists)."""
        from repro.obs.spans import FlowSpan

        span = FlowSpan(flow, self)
        flow.obs_span = span
        self.spans.append(span)
        return span

    def log_event(self, t_ps: int, event: str, fid: int) -> None:
        self.events.append((t_ps, event, fid))

    # -- network attachment --------------------------------------------------
    def attach_network(self, net) -> None:
        """Observe every port of ``net`` (idempotent per port)."""
        for port in net.ports:
            if port.obs is None:
                port.obs = self
                self.ports.append(port)
        if not self._have_port_sources and self.ports:
            self._have_port_sources = True
            ports = self.ports  # shared, so later attaches are covered too
            self.add_source("queue.data.bytes.max",
                            lambda: max((p.data_queue.bytes for p in ports),
                                        default=0))
            self.add_source("queue.data.bytes.total",
                            lambda: sum(p.data_queue.bytes for p in ports))
            self.add_source("queue.credit.pkts.total",
                            lambda: sum(len(p.credit_queue) for p in ports))
            self.add_source("tx.data.bytes.total",
                            lambda: sum(p.stats.data_bytes_sent
                                        for p in ports))
            self.add_source("tx.credit.pkts.total",
                            lambda: sum(p.stats.credit_pkts_sent
                                        for p in ports))

    def trace_network(self, net, keep: Optional[int] = None) -> None:
        """Attach a :class:`~repro.net.trace.PortTracer` to every port of
        ``net`` (the pcap-lite exporter reads ``self.tracers``)."""
        from repro.net.trace import PortTracer

        traced = {t.port for t in self.tracers}
        for port in net.ports:
            if port not in traced:
                self.tracers.append(PortTracer(port, keep=keep))

    # -- sampler factories (the repro.metrics.timeseries migration) ---------
    def sample_queue(self, port, interval_ps: int, name: Optional[str] = None):
        """A :class:`QueueSampler` whose readings mirror into a registry
        series (default name ``queue.<port.name>.bytes``)."""
        from repro.metrics.timeseries import QueueSampler

        series = self.add_series(name or f"queue.{port.name}.bytes")
        sampler = QueueSampler(self.sim, port, interval_ps, series=series)
        self._samplers.append(sampler)
        return sampler

    def sample_throughput(self, flows, interval_ps: int,
                          name_prefix: str = "throughput"):
        """A :class:`FlowThroughputSampler` mirroring per-flow goodput into
        ``<prefix>.f<fid>_bps`` series."""
        from repro.metrics.timeseries import FlowThroughputSampler

        sampler = FlowThroughputSampler(self.sim, flows, interval_ps,
                                        registry=self,
                                        name_prefix=name_prefix)
        self._samplers.append(sampler)
        return sampler

    def sample_rates(self, flows, interval_ps: int,
                     name_prefix: str = "rate") -> _FlowRateSampler:
        """Periodic cwnd/rate series for ``flows``."""
        sampler = _FlowRateSampler(self, flows, interval_ps, name_prefix)
        self._samplers.append(sampler)
        return sampler

    # -- snapshots -----------------------------------------------------------
    def start_snapshots(self, interval_ps: Optional[int] = None) -> None:
        if interval_ps is not None:
            self.snapshot_interval_ps = interval_ps
        if self.snapshot_interval_ps and self._snapshot_event is None:
            self._snapshot_event = self.sim.schedule(
                self.snapshot_interval_ps, self._snapshot_tick)

    def _snapshot_tick(self) -> None:
        self._snapshot_event = None
        self.snapshot()
        # Re-arm only while other work remains: a lone self-rescheduling
        # event would keep a run-to-quiescence ``sim.run()`` alive forever.
        if self.sim.pending() > 0:
            self._snapshot_event = self.sim.schedule(
                self.snapshot_interval_ps, self._snapshot_tick)

    def snapshot(self) -> None:
        """Poll every registered source once, at the current sim time."""
        now = self.sim.now
        for series, fn in self._snapshot_sources:
            times = series.times_ps
            if times and times[-1] == now:
                continue
            times.append(now)
            series.values.append(fn())
        self.snapshots_taken += 1
        cb = self.on_snapshot
        if cb is not None:
            cb(self)

    # -- finalize ------------------------------------------------------------
    def finalize(self) -> "MetricsRegistry":
        """Stop sampling, take a last snapshot, fold port/queue/span state
        into final counters.  Idempotent."""
        if self._finalized:
            return self
        self._finalized = True
        if self._snapshot_event is not None:
            self._snapshot_event.cancel()
            self._snapshot_event = None
        for sampler in self._samplers:
            sampler.stop()
        self.snapshot()
        self._flush_counters()
        return self

    def _set(self, name: str, value: int) -> None:
        self.counter(name).value = value

    def _flush_counters(self) -> None:
        ports = self.ports
        if ports:
            self._set("net.data.tx_pkts",
                      sum(p.stats.data_pkts_sent for p in ports))
            self._set("net.data.tx_bytes",
                      sum(p.stats.data_bytes_sent for p in ports))
            self._set("net.credit.tx_pkts",
                      sum(p.stats.credit_pkts_sent for p in ports))
            self._set("net.credit.tx_bytes",
                      sum(p.stats.credit_bytes_sent for p in ports))
            self._set("net.data.enqueued",
                      sum(p.data_queue.stats.enqueued for p in ports))
            self._set("net.data.dropped",
                      sum(p.data_queue.stats.dropped for p in ports))
            self._set("net.data.ecn_marked",
                      sum(p.data_queue.stats.ecn_marked for p in ports))
            self._set("net.credit.enqueued",
                      sum(p.credit_queue.stats.enqueued for p in ports))
            self._set("net.credit.dropped",
                      sum(p.credit_queue.stats.dropped for p in ports))
            phantom = sum(p.phantom.marks for p in ports
                          if p.phantom is not None)
            if phantom:
                self._set("net.phantom.ecn_marked", phantom)
        self._set("net.credit.throttled", self.credit_throttled)
        spans = self.spans
        self._set("flow.registered", len(spans))
        self._set("flow.started",
                  sum(1 for s in spans if s.start_ps is not None))
        self._set("flow.completed",
                  sum(1 for s in spans if s.finish_ps is not None))
        self._set("flow.stopped",
                  sum(1 for s in spans if s.stop_ps is not None))
        ep = [s.flow for s in spans if hasattr(s.flow, "credits_sent")]
        if ep:
            self._set("ep.credits_sent", sum(f.credits_sent for f in ep))
            self._set("ep.credits_received",
                      sum(f.credits_received for f in ep))
            self._set("ep.credits_used", sum(f.credits_used for f in ep))
            self._set("ep.credits_wasted", sum(f.credits_wasted for f in ep))
        updates = sum(s.feedback_updates for s in spans)
        if updates:
            self._set("ep.feedback_updates", updates)
        self.gauge("sim.now_ps").set(self.sim.now)
        self.gauge("sim.events_processed").set(self.sim.events_processed)

    # -- summaries -----------------------------------------------------------
    def as_dict(self) -> dict:
        """Picklable/JSON-able summary (the ``TaskResult.metrics`` shape)."""
        return {
            "runs": 1,
            "flows": len(self.spans),
            "snapshots": self.snapshots_taken,
            "counters": {n: c.value for n, c in sorted(self.counters.items())},
            "gauges": {n: g.value for n, g in sorted(self.gauges.items())},
            "histograms": {n: h.as_dict()
                           for n, h in sorted(self.histograms.items())},
            "series": {n: {"times_ps": list(s.times_ps),
                           "values": list(s.values)}
                       for n, s in sorted(self.series.items())},
            "events": [list(e) for e in self.events],
            "spans": [s.as_dict() for s in self.spans],
        }

    def summary(self) -> dict:
        """Finalize and summarize in one step."""
        return self.finalize().as_dict()


# -- summary algebra (merging registries and shipped task summaries) ---------

def empty_summary() -> dict:
    return {"runs": 0, "flows": 0, "snapshots": 0, "counters": {},
            "gauges": {}, "histograms": {}, "series": {}, "events": [],
            "spans": []}


def merge_summaries(summaries: Sequence[Optional[dict]]) -> dict:
    """Sum counters, merge histograms, concatenate spans/events.  Series
    keep per-run identity: a name collision gets a ``#<run>`` suffix so two
    runs' time series never interleave."""
    out = empty_summary()
    for summary in summaries:
        if not summary:
            continue
        out["runs"] += summary.get("runs", 0)
        out["flows"] += summary.get("flows", 0)
        out["snapshots"] += summary.get("snapshots", 0)
        for name, value in summary.get("counters", {}).items():
            out["counters"][name] = out["counters"].get(name, 0) + value
        out["gauges"].update(summary.get("gauges", {}))
        for name, data in summary.get("histograms", {}).items():
            mine = out["histograms"].get(name)
            if mine is None:
                out["histograms"][name] = Histogram.from_dict(name,
                                                              data).as_dict()
            else:
                h = Histogram.from_dict(name, mine)
                h.merge_dict(data)
                out["histograms"][name] = h.as_dict()
        for name, data in summary.get("series", {}).items():
            key = name
            n = 2
            while key in out["series"]:
                key = f"{name}#{n}"
                n += 1
            out["series"][key] = data
        out["events"].extend(summary.get("events", ()))
        out["spans"].extend(summary.get("spans", ()))
    return out


def format_summary(summary: dict, limit: int = 30) -> str:
    """Human-readable digest (what the CLI prints to stderr)."""
    lines = [f"repro.obs: {summary.get('flows', 0)} flow(s) across "
             f"{summary.get('runs', 0)} run(s), "
             f"{summary.get('snapshots', 0)} snapshot(s), "
             f"{len(summary.get('events', ()))} span event(s), "
             f"{len(summary.get('series', {}))} series"]
    counters = summary.get("counters", {})
    if counters:
        lines.append("  counters:")
        for name in sorted(counters)[:limit]:
            lines.append(f"    {name:<28s} {counters[name]:>16,}")
        if len(counters) > limit:
            lines.append(f"    ... {len(counters) - limit} more")
    hists = summary.get("histograms", {})
    if hists:
        lines.append("  histograms:")
        for name in sorted(hists):
            h = Histogram.from_dict(name, hists[name])
            if not h.count:
                continue
            lines.append(
                f"    {name:<28s} n={h.count:,} mean={h.mean():,.0f} "
                f"p50={h.percentile(50):,} p99={h.percentile(99):,} "
                f"max={h.vmax:,}")
    return "\n".join(lines)

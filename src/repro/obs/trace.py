"""repro.obs.trace — cross-layer causal tracing for sweeps, shards, cells.

One trace answers "where did the wall-clock time go?" across every layer a
matrix run touches: the runtime scheduler (task attempt spans, pool worker
lanes, retry/backoff events), the sharding window loop (per-shard
``[W, W+lookahead)`` grant spans with events-drained / cut-packet / idle
counters, plus the parent's merge span), matrix cells (one span per cell,
spec axes as args, linked to the scheduler task span), and sim phases
(builder replay, warmup, measurement, finalize — plus generic
``engine.run`` spans the :class:`~repro.sim.engine.Simulator` emits per
``run()`` call).

Two explicit clock domains, never mixed in one record:

``wall``
    Microseconds of ``time.monotonic()`` relative to the owning tracer's
    epoch.  Worker processes ship their absolute epoch alongside their
    records, so the parent re-bases them into its own epoch at ingest
    (exact on Linux, where ``monotonic`` is CLOCK_MONOTONIC system-wide;
    best-effort elsewhere).

``sim``
    Integer picoseconds of simulated time, straight off ``sim.now``.

Records are plain dicts (picklable, JSON-serializable):

* ``span``: ``{record, layer, track, name, clock, t0, t1, seq, id, args}``
* ``event``: same shape with a single ``t``
* the JSONL file adds one leading ``meta`` record (schema tag, counts).

Ids are deterministic for a fixed run: each ``(layer, track)`` pair counts
its own sequence, and the export orders records by ``(layer, track,
seq)`` — so two identical runs produce byte-identical trace files (modulo
timings; pool-parallel sweeps additionally permute worker-lane tracks by
completion order).

Activation is ambient and strictly observation-only: with no tracer
active every instrumentation point is one ``is None`` branch, and an
active tracer touches no RNG, no event heap, and no cache fingerprints —
golden digests, audit verdicts, and cell rows are bit-identical with
tracing on or off (``tests/test_trace.py`` pins this).  Turn it on with
``--trace FILE`` on ``repro run``/``repro matrix``/the fig CLIs, with
``REPRO_TRACE=FILE`` process-wide, or with :func:`tracing` in code.
Worker processes never write files themselves: per-worker records ride
the existing result channels (``TaskResult.trace``, the shard ``collect``
reply) in bounded buffers and are stitched by the parent under
shard/task-qualified track ids.
"""

from __future__ import annotations

import atexit
import contextlib
import json
import os
import pathlib
import time
import warnings
from typing import Any, Dict, List, Optional

#: Schema tag written to (and checked in) every JSONL export.
SCHEMA = "repro.obs.trace/v1"

#: The four instrumented layers, in export order.
LAYERS = ("cell", "runtime", "shard", "sim")

CLOCKS = ("wall", "sim")

_RECORD_KINDS = ("meta", "span", "event")

#: Default per-tracer record cap.  A tracer never grows past this; further
#: records increment ``dropped`` (reported in the meta record) instead.
MAX_RECORDS = 100_000

#: Smaller default for per-task / per-shard worker buffers: they ship over
#: pipes and pickle back onto TaskResults, so keep them modest.
WORKER_MAX_RECORDS = 50_000


class Tracer:
    """A bounded, append-only record buffer with deterministic ids."""

    def __init__(self, max_records: int = MAX_RECORDS):
        self.max_records = max_records
        self.records: List[dict] = []
        self.dropped = 0
        #: Absolute ``time.monotonic()`` at creation; every wall timestamp
        #: is microseconds since this.  Shipped with worker buffers so the
        #: parent can re-base them.
        self.epoch = time.monotonic()
        self._seq: Dict[tuple, int] = {}
        #: task index -> finished task span ``{"t0", "t1", "id"}``; read by
        #: the matrix layer to place cell spans and link them to their
        #: tasks (index-keyed: labels may repeat across a sweep).
        self.task_spans: Dict[int, dict] = {}
        #: label -> extra args merged into that task's span (e.g. a matrix
        #: cell's spec axes, annotated before the sweep runs).
        self.annotations: Dict[str, dict] = {}

    # -- clocks -------------------------------------------------------------

    def now_us(self) -> float:
        """Wall clock: microseconds since this tracer's epoch."""
        return round((time.monotonic() - self.epoch) * 1e6, 3)

    def wall_us(self, monotonic_s: float) -> float:
        """Re-base an absolute ``time.monotonic()`` reading onto the epoch."""
        return round((monotonic_s - self.epoch) * 1e6, 3)

    # -- emission -----------------------------------------------------------

    def _add(self, rec: dict) -> Optional[str]:
        if len(self.records) >= self.max_records:
            self.dropped += 1
            return None
        key = (rec["layer"], rec["track"])
        seq = self._seq.get(key, 0)
        self._seq[key] = seq + 1
        rec["seq"] = seq
        rec["id"] = f"{rec['layer']}/{rec['track']}#{seq}"
        self.records.append(rec)
        return rec["id"]

    def span(self, layer: str, name: str, *, track: str,
             t0, t1, clock: str = "wall",
             args: Optional[dict] = None,
             link: Optional[str] = None) -> Optional[str]:
        """Record a completed interval; returns its id (None if dropped)."""
        rec = {"record": "span", "layer": layer, "track": track,
               "name": name, "clock": clock, "t0": t0, "t1": t1,
               "args": args or {}}
        if link is not None:
            rec["link"] = link
        return self._add(rec)

    def event(self, layer: str, name: str, *, track: str,
              t, clock: str = "wall",
              args: Optional[dict] = None) -> Optional[str]:
        """Record an instantaneous occurrence (e.g. a backoff deferral)."""
        return self._add({"record": "event", "layer": layer, "track": track,
                          "name": name, "clock": clock, "t": t,
                          "args": args or {}})

    def annotate(self, label: str, args: dict) -> None:
        """Attach extra args to the task span that will carry ``label``."""
        self.annotations.setdefault(label, {}).update(args)

    # -- stitching ----------------------------------------------------------

    def ingest(self, records, *, prefix: str = "",
               shift_us: float = 0.0, dropped: int = 0) -> int:
        """Adopt records from another tracer (a worker buffer).

        Tracks are re-qualified with ``prefix`` and wall timestamps shifted
        by ``shift_us`` (the worker epoch re-based onto ours); sim
        timestamps are absolute and pass through.  Seq/ids are reassigned
        under this tracer's counters.  Returns how many were adopted.
        """
        n = 0
        for rec in records:
            out = dict(rec)
            out.pop("seq", None)
            out.pop("id", None)
            out["track"] = prefix + out["track"]
            if shift_us and out.get("clock") == "wall":
                for key in ("t0", "t1", "t"):
                    if key in out:
                        out[key] = round(out[key] + shift_us, 3)
            if self._add(out) is not None:
                n += 1
        self.dropped += dropped
        return n

    def ingest_blob(self, blob: Optional[dict], *, prefix: str = "") -> int:
        """Adopt a worker buffer shipped as ``{"records", "epoch",
        "dropped"}`` (the shape :func:`collect` and the shard workers
        produce), re-basing its epoch onto ours."""
        if not blob or not blob.get("records"):
            return 0
        shift = round((blob.get("epoch", self.epoch) - self.epoch) * 1e6, 3)
        return self.ingest(blob["records"], prefix=prefix, shift_us=shift,
                          dropped=blob.get("dropped", 0))

    def sorted_records(self) -> List[dict]:
        """Records in the canonical export order ``(layer, track, seq)``."""
        return sorted(self.records,
                      key=lambda r: (r["layer"], r["track"], r["seq"]))


# ---------------------------------------------------------------------------
# Ambient activation
# ---------------------------------------------------------------------------

_ACTIVE: Optional[Tracer] = None
#: Innermost-wins stack of worker/task capture buffers (see :func:`collect`).
_BUFFERS: List[Tracer] = []
#: True once the ``REPRO_TRACE`` env activation has been consumed — either
#: lazily (library use) or because an explicit :func:`activate` took over.
_env_consumed = False
_atexit_registered = False


def activate(max_records: int = MAX_RECORDS) -> Tracer:
    """Install a process-wide ambient tracer (CLI ``--trace`` entry point).

    Marks any ``REPRO_TRACE`` env activation as consumed, so the explicit
    owner of this tracer controls the single file write.
    """
    global _ACTIVE, _env_consumed
    _env_consumed = True
    _ACTIVE = Tracer(max_records=max_records)
    return _ACTIVE


def deactivate() -> Optional[Tracer]:
    """Remove the ambient tracer and return it (None if none was active)."""
    global _ACTIVE
    tracer, _ACTIVE = _ACTIVE, None
    return tracer


def reset() -> None:
    """Drop all ambient state, including env consumption (tests, reuse)."""
    global _ACTIVE, _env_consumed
    _ACTIVE = None
    _env_consumed = False
    _BUFFERS.clear()


def _env_flush() -> None:
    """atexit hook for the lazy ``REPRO_TRACE`` activation: best-effort
    write of whatever the ambient tracer holds when the process exits."""
    path = os.environ.get("REPRO_TRACE")
    if _ACTIVE is None or not path or not _ACTIVE.records:
        return
    try:
        write_files(_ACTIVE, path)
    except OSError:
        pass


def current() -> Optional[Tracer]:
    """The ambient tracer, lazily created from ``REPRO_TRACE`` if set.

    The lazy path registers an atexit flush to the env path — library runs
    with nothing but the env var still produce a trace file.  An explicit
    :func:`activate` (the CLI) preempts this and owns the write instead.
    """
    global _ACTIVE, _env_consumed, _atexit_registered
    if _ACTIVE is None and not _env_consumed \
            and os.environ.get("REPRO_TRACE"):
        _env_consumed = True
        _ACTIVE = Tracer()
        if not _atexit_registered:
            _atexit_registered = True
            atexit.register(_env_flush)
    return _ACTIVE


def emit_target() -> Optional[Tracer]:
    """Where instrumentation should record: the innermost open capture
    buffer, else the ambient tracer, else None (tracing off)."""
    if _BUFFERS:
        return _BUFFERS[-1]
    return current()


class collect:
    """Capture scope for worker/task execution: records emitted inside go
    to a private bounded buffer instead of the ambient tracer, ready to be
    shipped back over the result channel and stitched by the parent.

    After exit, :attr:`blob` holds ``{"records", "epoch", "dropped"}`` —
    feed it to :meth:`Tracer.ingest_blob`.
    """

    blob: Optional[dict] = None

    def __init__(self, max_records: int = WORKER_MAX_RECORDS):
        self.tracer = Tracer(max_records=max_records)

    def __enter__(self) -> "collect":
        _BUFFERS.append(self.tracer)
        return self

    def __exit__(self, exc_type, exc, tb) -> bool:
        if _BUFFERS and _BUFFERS[-1] is self.tracer:
            _BUFFERS.pop()
        elif self.tracer in _BUFFERS:  # pragma: no cover - defensive
            _BUFFERS.remove(self.tracer)
        self.blob = {"records": self.tracer.records,
                     "epoch": self.tracer.epoch,
                     "dropped": self.tracer.dropped}
        return False


@contextlib.contextmanager
def tracing(max_records: int = MAX_RECORDS):
    """Context manager over activate/deactivate; yields the tracer."""
    global _ACTIVE
    prior = _ACTIVE
    tracer = activate(max_records=max_records)
    try:
        yield tracer
    finally:
        _ACTIVE = prior


# ---------------------------------------------------------------------------
# Runtime-layer recorder (driven by repro.runtime.telemetry)
# ---------------------------------------------------------------------------

class TaskRecorder:
    """Turns scheduler/telemetry callbacks into runtime-layer spans.

    One parent span per task on track ``task/<index>`` (queued -> final,
    carrying outcome/attempts/cache state plus any annotated matrix axes),
    child attempt spans on the same track, worker-lane spans on
    ``worker/<pid>`` when the executing process reported its window, and
    instant events for retry backoff (``deferred`` / ``resubmitted``).
    Worker sim records ship on ``TaskResult.trace`` and are stitched in
    under ``t<index>.``-prefixed tracks, so a cell's engine/phase spans
    stay attributable to their task.
    """

    def __init__(self, tracer: Tracer, sweep: str):
        self.tracer = tracer
        self.sweep = sweep
        self._state: Dict[int, dict] = {}

    @classmethod
    def maybe(cls, sweep: str) -> Optional["TaskRecorder"]:
        tracer = emit_target()
        return None if tracer is None else cls(tracer, sweep)

    def _track(self, index: int) -> str:
        return f"task/{index}"

    def queued(self, index: int, label: str) -> None:
        self._state[index] = {"label": label,
                              "queued": self.tracer.now_us(),
                              "t0": None, "attempt": 0, "blob": None}

    def started(self, index: int, label: str, attempt: int) -> None:
        st = self._state.setdefault(index, {"label": label,
                                            "queued": self.tracer.now_us(),
                                            "blob": None})
        st["t0"] = self.tracer.now_us()
        st["attempt"] = attempt

    def retry(self, index: int, label: str, attempt: int,
              error: str) -> None:
        st = self._state.get(index)
        if st is None or st.get("t0") is None:
            return
        self.tracer.span("runtime", "attempt", track=self._track(index),
                         t0=st["t0"], t1=self.tracer.now_us(),
                         args={"attempt": attempt, "outcome": "retry",
                               "error": error})

    def deferred(self, index: int, label: str, backoff_s: float) -> None:
        self.tracer.event("runtime", "deferred", track=self._track(index),
                          t=self.tracer.now_us(),
                          args={"backoff_s": round(backoff_s, 6)})

    def resubmitted(self, index: int, label: str, attempt: int) -> None:
        self.tracer.event("runtime", "resubmitted",
                          track=self._track(index),
                          t=self.tracer.now_us(), args={"attempt": attempt})

    def task_blob(self, index: int, blob: Optional[dict]) -> None:
        """Bank the executing process's report (pid, run window, records)."""
        st = self._state.get(index)
        if st is not None:
            st["blob"] = blob

    def done(self, index: int, label: str, cached: bool = False) -> None:
        self._finish(index, label, "cache-hit" if cached else "done")

    def failed(self, index: int, label: str, error: str,
               attempts: int) -> None:
        self._finish(index, label, "failed", error=error)

    def interrupted(self, index: int, label: str,
                    signame: str = "SIGINT") -> None:
        """A task cut short by a graceful-shutdown drain."""
        self._finish(index, label, "interrupted",
                     error=f"interrupted ({signame})")

    def _finish(self, index: int, label: str, outcome: str,
                error: Optional[str] = None) -> None:
        tracer = self.tracer
        st = self._state.pop(index, None)
        if st is None:
            return
        now = tracer.now_us()
        track = self._track(index)
        blob = st.get("blob")
        if blob is not None:
            # The executing process (a pool worker, or this one when
            # serial) reported its actual run window: a worker-lane span
            # plus its captured sim records, stitched under this task.
            w0 = tracer.wall_us(blob["t0"])
            w1 = tracer.wall_us(blob["t1"])
            tracer.span("runtime", "run", track=f"worker/{blob['pid']}",
                        t0=w0, t1=w1,
                        args={"task": label, "index": index,
                              "pid": blob["pid"]})
            tracer.ingest_blob(blob.get("trace"), prefix=f"t{index}.")
        elif st.get("t0") is not None and outcome != "cache-hit":
            tracer.span("runtime", "attempt", track=track,
                        t0=st["t0"], t1=now,
                        args={"attempt": st.get("attempt", 1),
                              "outcome": outcome})
        args: Dict[str, Any] = {"index": index, "outcome": outcome,
                                "sweep": self.sweep}
        if error is not None:
            args["error"] = error
        args.update(tracer.annotations.get(label, {}))
        span_id = tracer.span("runtime", label, track=track,
                              t0=st["queued"], t1=now, args=args)
        if span_id is not None:
            tracer.task_spans[index] = {"t0": st["queued"], "t1": now,
                                        "id": span_id}


# ---------------------------------------------------------------------------
# JSONL export (repro.obs.trace/v1)
# ---------------------------------------------------------------------------

def _dumps(rec: dict) -> str:
    return json.dumps(rec, sort_keys=True, separators=(",", ":"))


def write_jsonl(path, source, dropped: Optional[int] = None) -> int:
    """Write a trace as canonical JSONL; returns the line count.

    ``source`` is a :class:`Tracer` (exported in canonical order) or an
    already-ordered record list (e.g. from :func:`load_jsonl` — the writer
    re-sorts, so a load/write round-trip is byte-identical).
    """
    if isinstance(source, Tracer):
        records = source.sorted_records()
        if dropped is None:
            dropped = source.dropped
    else:
        records = sorted(source,
                         key=lambda r: (r["layer"], r["track"], r["seq"]))
    tracks = {(r["layer"], r["track"]) for r in records}
    meta = {"record": "meta", "schema": SCHEMA, "records": len(records),
            "tracks": len(tracks), "dropped": dropped or 0}
    with open(path, "w") as fh:
        fh.write(_dumps(meta) + "\n")
        for rec in records:
            fh.write(_dumps(rec) + "\n")
    return len(records) + 1


def _torn_tail(path, lineno: int, nonblank: int, line: str) -> bool:
    """True when ``lineno`` is the file's final non-blank line (a crash
    mid-write tears at most the last line; warn and skip it instead of
    refusing the whole trace)."""
    if lineno != nonblank:
        return False
    warnings.warn(f"{path}:{lineno}: skipping torn final line "
                  f"({line[:40]!r}...)", stacklevel=3)
    return True


def load_jsonl(path) -> dict:
    """Load a trace file: ``{"meta": {...}, "records": [...], "torn": n}``.

    A non-JSON *final* line (process killed mid-write) is skipped with a
    warning and counted in ``torn``; garbage anywhere else still raises.
    """
    meta = None
    records: List[dict] = []
    torn = 0
    all_lines = pathlib.Path(path).read_text().splitlines()
    nonblank = max((i for i, l in enumerate(all_lines, 1) if l.strip()),
                   default=0)
    for lineno, line in enumerate(all_lines, 1):
        line = line.strip()
        if not line:
            continue
        try:
            rec = json.loads(line)
        except ValueError:
            if _torn_tail(path, lineno, nonblank, line):
                torn += 1
                break
            raise
        if rec.get("record") == "meta":
            meta = rec
        else:
            records.append(rec)
    return {"meta": meta or {}, "records": records, "torn": torn}


def validate_jsonl(path) -> dict:
    """Schema-check a trace file; raises ``ValueError`` on any violation.

    Returns ``{"lines": n, "records": {kind: count}, "torn": n}``.  The
    one tolerated deviation is a torn *final* line — the signature of a
    crash mid-write, which the resilience plane must be able to read past
    (warn + skip), not a schema violation.
    """
    counts: Dict[str, int] = {}
    lines = 0
    torn = 0
    seen_ids = set()
    last_key = None
    all_lines = pathlib.Path(path).read_text().splitlines()
    nonblank = max((i for i, l in enumerate(all_lines, 1) if l.strip()),
                   default=0)
    for lineno, line in enumerate(all_lines, 1):
        line = line.strip()
        if not line:
            continue
        lines += 1
        try:
            rec = json.loads(line)
        except json.JSONDecodeError as exc:
            if _torn_tail(path, lineno, nonblank, line):
                torn += 1
                lines -= 1
                break
            raise ValueError(f"{path}:{lineno}: not JSON: {exc}") from exc
        kind = rec.get("record")
        if kind not in _RECORD_KINDS:
            raise ValueError(f"{path}:{lineno}: unknown record {kind!r}")
        counts[kind] = counts.get(kind, 0) + 1
        if lineno == 1:
            if kind != "meta" or rec.get("schema") != SCHEMA:
                raise ValueError(
                    f"{path}:1: missing meta/schema header ({SCHEMA})")
            continue
        if kind == "meta":
            raise ValueError(f"{path}:{lineno}: duplicate meta record")
        if rec.get("layer") not in LAYERS:
            raise ValueError(
                f"{path}:{lineno}: unknown layer {rec.get('layer')!r}")
        if rec.get("clock") not in CLOCKS:
            raise ValueError(
                f"{path}:{lineno}: unknown clock {rec.get('clock')!r}")
        if not isinstance(rec.get("track"), str) \
                or not isinstance(rec.get("name"), str):
            raise ValueError(f"{path}:{lineno}: needs track and name")
        if kind == "span":
            t0, t1 = rec.get("t0"), rec.get("t1")
            if not isinstance(t0, (int, float)) \
                    or not isinstance(t1, (int, float)) or t1 < t0:
                raise ValueError(
                    f"{path}:{lineno}: span needs t1 >= t0")
            if rec["clock"] == "sim" and not (
                    isinstance(t0, int) and isinstance(t1, int)):
                raise ValueError(
                    f"{path}:{lineno}: sim-clock times must be "
                    f"integer picoseconds")
        else:
            if not isinstance(rec.get("t"), (int, float)):
                raise ValueError(f"{path}:{lineno}: event needs t")
        rid = rec.get("id")
        if not isinstance(rid, str) or rid in seen_ids:
            raise ValueError(
                f"{path}:{lineno}: missing or duplicate id {rid!r}")
        seen_ids.add(rid)
        key = (rec["layer"], rec["track"], rec.get("seq", 0))
        if last_key is not None and key < last_key:
            raise ValueError(
                f"{path}:{lineno}: records not in canonical "
                f"(layer, track, seq) order")
        last_key = key
    if counts.get("meta", 0) != 1:
        raise ValueError(f"{path}: expected exactly one meta record")
    return {"lines": lines, "records": counts, "torn": torn}


# ---------------------------------------------------------------------------
# Chrome trace-event / Perfetto export
# ---------------------------------------------------------------------------

def to_chrome(records) -> dict:
    """Render records as a Chrome trace-event JSON object.

    Layers map to processes and tracks to threads, both numbered in sorted
    order (deterministic for a fixed record set), with ``M`` metadata
    events naming them.  Wall timestamps are already microseconds; sim
    timestamps convert ps -> us for the timeline but keep their exact
    picosecond values in ``args``.
    """
    layers = sorted({r["layer"] for r in records})
    pid_of = {layer: i + 1 for i, layer in enumerate(layers)}
    tracks = sorted({(r["layer"], r["track"]) for r in records})
    tid_of = {}
    for layer in layers:
        for i, (lay, track) in enumerate(t for t in tracks
                                         if t[0] == layer):
            tid_of[(lay, track)] = i + 1
    events: List[dict] = []
    for layer in layers:
        events.append({"ph": "M", "pid": pid_of[layer], "tid": 0,
                       "name": "process_name",
                       "args": {"name": f"repro:{layer}"}})
    for (layer, track), tid in sorted(tid_of.items()):
        events.append({"ph": "M", "pid": pid_of[layer], "tid": tid,
                       "name": "thread_name", "args": {"name": track}})
    for rec in records:
        pid = pid_of[rec["layer"]]
        tid = tid_of[(rec["layer"], rec["track"])]
        args = dict(rec.get("args", {}))
        if rec["clock"] == "sim":
            if rec["record"] == "span":
                args["t0_ps"], args["t1_ps"] = rec["t0"], rec["t1"]
            else:
                args["t_ps"] = rec["t"]
        base = {"name": rec["name"], "cat": rec["layer"], "pid": pid,
                "tid": tid, "args": args}
        if rec["record"] == "span":
            t0, t1 = rec["t0"], rec["t1"]
            if rec["clock"] == "sim":
                t0, t1 = t0 / 1e6, t1 / 1e6
            events.append({**base, "ph": "X", "ts": t0,
                           "dur": max(0.0, t1 - t0)})
        else:
            t = rec["t"] / 1e6 if rec["clock"] == "sim" else rec["t"]
            events.append({**base, "ph": "i", "ts": t, "s": "t"})
    return {"traceEvents": events, "displayTimeUnit": "ms"}


def write_chrome(path, source) -> int:
    """Write the Perfetto-loadable JSON; returns the trace-event count."""
    records = source.sorted_records() if isinstance(source, Tracer) \
        else source
    doc = to_chrome(records)
    with open(path, "w") as fh:
        json.dump(doc, fh, sort_keys=True)
    return len(doc["traceEvents"])


def write_files(tracer: Tracer, path) -> int:
    """Write both exports: JSONL at ``path``, Chrome JSON at
    ``<path>.perfetto.json``.  Returns the JSONL line count."""
    n = write_jsonl(path, tracer)
    write_chrome(f"{path}.perfetto.json", tracer)
    return n


# ---------------------------------------------------------------------------
# Summaries (repro trace summarize)
# ---------------------------------------------------------------------------

def _span_wall_us(rec: dict) -> Optional[float]:
    """A span's wall-clock cost, if knowable: wall spans directly, sim
    spans via the ``wall_us`` arg the instrumentation attaches."""
    if rec["clock"] == "wall":
        return rec["t1"] - rec["t0"]
    wall = rec.get("args", {}).get("wall_us")
    return float(wall) if wall is not None else None


def summarize(records) -> dict:
    """Aggregate a trace: per-layer time sinks and a shard-imbalance table.

    Returns ``{"records", "layers": {layer: {name: {count, total_us,
    max_us}}}, "shards": {shard: {...}}}``.
    """
    layers: Dict[str, Dict[str, dict]] = {}
    shards: Dict[Any, dict] = {}
    for rec in records:
        if rec.get("record") != "span":
            continue
        wall = _span_wall_us(rec)
        if wall is not None:
            # Stitched worker tracks keep their task prefix; fold the
            # prefix away so one name aggregates across tasks/shards.
            agg = layers.setdefault(rec["layer"], {}) \
                        .setdefault(rec["name"],
                                    {"count": 0, "total_us": 0.0,
                                     "max_us": 0.0})
            agg["count"] += 1
            agg["total_us"] += wall
            agg["max_us"] = max(agg["max_us"], wall)
        if rec["layer"] == "shard":
            sid = rec.get("args", {}).get("shard")
            if sid is None:
                continue
            s = shards.setdefault(sid, {"busy_us": 0.0, "idle_us": 0.0,
                                        "build_us": 0.0, "windows": 0,
                                        "events": 0, "shipped": 0,
                                        "received": 0})
            args = rec.get("args", {})
            if rec["name"] == "window":
                s["busy_us"] += rec["t1"] - rec["t0"]
                s["idle_us"] += float(args.get("idle_us", 0.0))
                s["windows"] += 1
                s["events"] += int(args.get("events", 0))
                s["shipped"] += int(args.get("shipped", 0))
                s["received"] += int(args.get("received", 0))
            elif rec["name"] == "builder.replay":
                s["build_us"] += rec["t1"] - rec["t0"]
    for s in shards.values():
        active = s["busy_us"] + s["idle_us"]
        s["idle_frac"] = round(s["idle_us"] / active, 4) if active else 0.0
    return {"records": len(records), "layers": layers, "shards": shards}


def format_summary(summary: dict, top: int = 8) -> str:
    """Human-readable rendering of :func:`summarize`'s output."""
    lines = [f"== repro.obs.trace: {summary['records']} record(s) =="]
    for layer in LAYERS:
        sinks = summary["layers"].get(layer)
        if not sinks:
            continue
        lines.append(f"[{layer}] top time sinks:")
        ranked = sorted(sinks.items(), key=lambda kv: -kv[1]["total_us"])
        for name, agg in ranked[:top]:
            lines.append(
                f"  {name:<40} n={agg['count']:<6} "
                f"total={agg['total_us'] / 1e3:10.3f}ms "
                f"max={agg['max_us'] / 1e3:8.3f}ms")
        if len(ranked) > top:
            lines.append(f"  ... and {len(ranked) - top} more")
    if summary["shards"]:
        lines.append("[shard] imbalance:")
        lines.append(f"  {'shard':<6} {'busy_ms':>10} {'idle_ms':>10} "
                     f"{'idle%':>6} {'windows':>8} {'events':>10} "
                     f"{'shipped':>8} {'recv':>8}")
        for sid in sorted(summary["shards"]):
            s = summary["shards"][sid]
            lines.append(
                f"  {sid!s:<6} {s['busy_us'] / 1e3:>10.3f} "
                f"{s['idle_us'] / 1e3:>10.3f} "
                f"{100 * s['idle_frac']:>5.1f}% {s['windows']:>8} "
                f"{s['events']:>10} {s['shipped']:>8} {s['received']:>8}")
    return "\n".join(lines)

"""Exporters for :mod:`repro.obs` summaries: JSONL, CSV, Prometheus, pcap-lite.

All exporters read the plain-dict *summary* shape produced by
:meth:`MetricsRegistry.summary` / :func:`merge_summaries`, so they work
identically on an in-process registry and on summaries shipped back from
parallel sweep workers.  Every writer has a loader that round-trips exactly
(``load_jsonl(write_jsonl(s)) == s`` for counters/histograms/series), and a
``validate_*`` schema check used by CI's obs-smoke job.

The pcap-lite dump serializes :class:`~repro.net.trace.PortTracer` records
(one JSON object per packet, tagged with the port name) so a trace captured
under ``repro obs --pcap`` can be reloaded and diffed outside golden tests.
"""

from __future__ import annotations

import json
from typing import Dict, List, Optional, Sequence

#: Schema tag written to (and checked in) every JSONL export.
SCHEMA = "repro.obs.v1"

_RECORD_KINDS = ("meta", "counter", "gauge", "histogram", "series", "span",
                 "event", "pkt")


# -- JSONL event stream -------------------------------------------------------

def write_jsonl(path, summary: dict) -> int:
    """Write ``summary`` as one JSON object per line; returns line count."""
    lines = 0
    with open(path, "w") as fh:
        fh.write(json.dumps({
            "record": "meta", "schema": SCHEMA,
            "runs": summary.get("runs", 0),
            "flows": summary.get("flows", 0),
            "snapshots": summary.get("snapshots", 0),
        }) + "\n")
        lines += 1
        for name, value in sorted(summary.get("counters", {}).items()):
            fh.write(json.dumps({"record": "counter", "name": name,
                                 "value": value}) + "\n")
            lines += 1
        for name, value in sorted(summary.get("gauges", {}).items()):
            fh.write(json.dumps({"record": "gauge", "name": name,
                                 "value": value}) + "\n")
            lines += 1
        for name, data in sorted(summary.get("histograms", {}).items()):
            fh.write(json.dumps({"record": "histogram", "name": name,
                                 **data}) + "\n")
            lines += 1
        for name, data in sorted(summary.get("series", {}).items()):
            fh.write(json.dumps({"record": "series", "name": name,
                                 "times_ps": data["times_ps"],
                                 "values": data["values"]}) + "\n")
            lines += 1
        for span in summary.get("spans", ()):
            fh.write(json.dumps({"record": "span", **span}) + "\n")
            lines += 1
        for t_ps, event, fid in summary.get("events", ()):
            fh.write(json.dumps({"record": "event", "t_ps": t_ps,
                                 "event": event, "fid": fid}) + "\n")
            lines += 1
    return lines


def load_jsonl(path) -> dict:
    """Reassemble a summary dict from a :func:`write_jsonl` export."""
    from repro.obs.registry import empty_summary

    out = empty_summary()
    with open(path) as fh:
        for line in fh:
            line = line.strip()
            if not line:
                continue
            rec = json.loads(line)
            kind = rec.get("record")
            if kind == "meta":
                out["runs"] = rec.get("runs", 0)
                out["flows"] = rec.get("flows", 0)
                out["snapshots"] = rec.get("snapshots", 0)
            elif kind == "counter":
                out["counters"][rec["name"]] = rec["value"]
            elif kind == "gauge":
                out["gauges"][rec["name"]] = rec["value"]
            elif kind == "histogram":
                out["histograms"][rec["name"]] = {
                    "count": rec["count"], "sum": rec["sum"],
                    "min": rec.get("min"), "max": rec.get("max"),
                    "buckets": rec.get("buckets", {}),
                }
            elif kind == "series":
                out["series"][rec["name"]] = {"times_ps": rec["times_ps"],
                                              "values": rec["values"]}
            elif kind == "span":
                span = dict(rec)
                span.pop("record")
                out["spans"].append(span)
            elif kind == "event":
                out["events"].append([rec["t_ps"], rec["event"], rec["fid"]])
    return out


def validate_jsonl(path) -> dict:
    """Schema-check a JSONL export; raises ``ValueError`` on any violation.

    Returns ``{"lines": n, "records": {kind: count}}`` for reporting.
    """
    counts: Dict[str, int] = {}
    lines = 0
    with open(path) as fh:
        for lineno, line in enumerate(fh, 1):
            line = line.strip()
            if not line:
                continue
            lines += 1
            try:
                rec = json.loads(line)
            except json.JSONDecodeError as exc:
                raise ValueError(f"{path}:{lineno}: not JSON: {exc}") from exc
            kind = rec.get("record")
            if kind not in _RECORD_KINDS:
                raise ValueError(f"{path}:{lineno}: unknown record {kind!r}")
            counts[kind] = counts.get(kind, 0) + 1
            if lineno == 1:
                if kind != "meta" or rec.get("schema") != SCHEMA:
                    raise ValueError(
                        f"{path}:1: missing meta/schema header ({SCHEMA})")
            if kind == "counter":
                if not isinstance(rec.get("name"), str):
                    raise ValueError(f"{path}:{lineno}: counter needs a name")
                if not isinstance(rec.get("value"), int) or rec["value"] < 0:
                    raise ValueError(
                        f"{path}:{lineno}: counter value must be an int >= 0")
            elif kind == "histogram":
                if rec.get("count", -1) < 0 or not isinstance(
                        rec.get("buckets"), dict):
                    raise ValueError(f"{path}:{lineno}: malformed histogram")
            elif kind == "series":
                times, values = rec.get("times_ps"), rec.get("values")
                if (not isinstance(times, list) or not isinstance(values, list)
                        or len(times) != len(values)):
                    raise ValueError(
                        f"{path}:{lineno}: series times/values misaligned")
                if any(b < a for a, b in zip(times, times[1:])):
                    raise ValueError(
                        f"{path}:{lineno}: series times not sorted")
            elif kind == "event":
                if not isinstance(rec.get("t_ps"), int):
                    raise ValueError(f"{path}:{lineno}: event needs t_ps")
    if counts.get("meta", 0) != 1:
        raise ValueError(f"{path}: expected exactly one meta record")
    return {"lines": lines, "records": counts}


# -- CSV time series ----------------------------------------------------------

CSV_HEADER = "series,time_ps,value"


def write_csv(path, summary: dict) -> int:
    """Long-format time series (``series,time_ps,value``); returns row count.

    Long format keeps series with different cadences exact — a wide table
    would need resampling.  ``repr`` of a float round-trips exactly in
    Python 3, so ``load_csv`` reconstructs identical values.
    """
    rows = 0
    with open(path, "w") as fh:
        fh.write(CSV_HEADER + "\n")
        for name, data in sorted(summary.get("series", {}).items()):
            for t, v in zip(data["times_ps"], data["values"]):
                fh.write(f"{name},{t},{v!r}\n")
                rows += 1
    return rows


def load_csv(path) -> Dict[str, dict]:
    """Reassemble ``{name: {"times_ps": [...], "values": [...]}}``."""
    out: Dict[str, dict] = {}
    with open(path) as fh:
        header = fh.readline().strip()
        if header != CSV_HEADER:
            raise ValueError(f"{path}: bad CSV header {header!r}")
        for line in fh:
            line = line.strip()
            if not line:
                continue
            name, t, v = line.rsplit(",", 2)
            series = out.setdefault(name, {"times_ps": [], "values": []})
            series["times_ps"].append(int(t))
            value = float(v)
            series["values"].append(int(value) if value.is_integer()
                                    and "." not in v and "e" not in v
                                    else value)
    return out


def validate_csv(path) -> dict:
    """Schema-check a CSV export; raises ``ValueError`` on any violation."""
    rows = 0
    last_t: Dict[str, int] = {}
    with open(path) as fh:
        header = fh.readline().strip()
        if header != CSV_HEADER:
            raise ValueError(f"{path}: bad CSV header {header!r}")
        for lineno, line in enumerate(fh, 2):
            line = line.strip()
            if not line:
                continue
            parts = line.rsplit(",", 2)
            if len(parts) != 3:
                raise ValueError(f"{path}:{lineno}: expected 3 columns")
            name, t, v = parts
            try:
                t = int(t)
                float(v)
            except ValueError as exc:
                raise ValueError(f"{path}:{lineno}: bad row: {exc}") from exc
            if name in last_t and t < last_t[name]:
                raise ValueError(
                    f"{path}:{lineno}: series {name!r} times not sorted")
            last_t[name] = t
            rows += 1
    return {"rows": rows, "series": len(last_t)}


# -- Prometheus text summary --------------------------------------------------

def _prom_name(name: str) -> str:
    return "repro_" + "".join(
        ch if ch.isalnum() or ch == "_" else "_" for ch in name)


def prometheus_text(summary: dict) -> str:
    """Prometheus text exposition of counters, gauges, and histograms."""
    lines: List[str] = []
    for name, value in sorted(summary.get("counters", {}).items()):
        metric = _prom_name(name)
        lines.append(f"# TYPE {metric} counter")
        lines.append(f"{metric} {value}")
    for name, value in sorted(summary.get("gauges", {}).items()):
        metric = _prom_name(name)
        lines.append(f"# TYPE {metric} gauge")
        lines.append(f"{metric} {value}")
    for name, data in sorted(summary.get("histograms", {}).items()):
        metric = _prom_name(name)
        lines.append(f"# TYPE {metric} histogram")
        cum = 0
        for b in sorted(int(k) for k in (data.get("buckets") or {})):
            cum += data["buckets"][str(b)]
            le = 0 if b == 0 else (1 << b) - 1
            lines.append(f'{metric}_bucket{{le="{le}"}} {cum}')
        lines.append(f'{metric}_bucket{{le="+Inf"}} {data.get("count", 0)}')
        lines.append(f"{metric}_sum {data.get('sum', 0)}")
        lines.append(f"{metric}_count {data.get('count', 0)}")
    return "\n".join(lines) + "\n"


def parse_prometheus(text: str) -> Dict[str, float]:
    """Parse sample lines back into ``{metric: value}`` (buckets included,
    keyed as ``name_bucket{le="..."}``).  Integer-valued samples come back
    as ints so counter round-trips are exact."""
    out: Dict[str, float] = {}
    for line in text.splitlines():
        line = line.strip()
        if not line or line.startswith("#"):
            continue
        metric, _, value = line.rpartition(" ")
        try:
            out[metric] = int(value)
        except ValueError:
            out[metric] = float(value)
    return out


def write_prometheus(path, summary: dict) -> None:
    with open(path, "w") as fh:
        fh.write(prometheus_text(summary))


# -- pcap-lite (PortTracer dump) ----------------------------------------------

def dump_traces(path, tracers: Sequence) -> int:
    """Dump every tracer's records as JSONL ``pkt`` lines; returns count."""
    n = 0
    with open(path, "w") as fh:
        for tracer in tracers:
            port = tracer.port.name
            for r in tracer.records:
                fh.write(json.dumps({
                    "record": "pkt", "port": port, "time_ps": r.time_ps,
                    "kind": r.kind, "src": r.src, "dst": r.dst, "seq": r.seq,
                    "credit_seq": r.credit_seq, "wire_bytes": r.wire_bytes,
                }) + "\n")
                n += 1
    return n


def load_traces(path) -> Dict[str, list]:
    """Reload a :func:`dump_traces` file as ``{port: [TraceRecord, ...]}``."""
    from repro.net.trace import TraceRecord

    out: Dict[str, list] = {}
    with open(path) as fh:
        for line in fh:
            line = line.strip()
            if not line:
                continue
            rec = json.loads(line)
            if rec.get("record") != "pkt":
                raise ValueError(f"{path}: unexpected record {rec!r}")
            out.setdefault(rec["port"], []).append(TraceRecord(
                time_ps=rec["time_ps"], kind=rec["kind"], src=rec["src"],
                dst=rec["dst"], seq=rec["seq"], credit_seq=rec["credit_seq"],
                wire_bytes=rec["wire_bytes"]))
    return out

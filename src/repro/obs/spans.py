"""Flow-span tracing: one lifecycle timeline per flow.

A :class:`FlowSpan` records the timestamps the paper's FCT analysis cares
about — when the flow was created, when it started, when the first credit
arrived at the sender (ExpressPass), when the first payload byte reached the
receiver, when it was stopped, and when it completed — plus per-flow credit
round-trip samples (fed into the registry's ``expresspass.credit_rtt_ps``
histogram) and the number of Algorithm-1 feedback updates the receiver ran.

Marks are idempotent (first write wins) and each successful mark appends one
``(t_ps, event, fid)`` record to the registry's event log, which is what the
JSONL exporter streams out.  Flows carry ``obs_span = None`` when metrics
are off, so the per-packet cost of tracing is a single attribute check.
"""

from __future__ import annotations

from typing import Optional

#: Event name -> FlowSpan attribute, for the generic :meth:`FlowSpan.mark`.
_EVENT_ATTR = {
    "start": "start_ps",
    "first_credit": "first_credit_ps",
    "first_data": "first_data_ps",
    "stop": "stop_ps",
}


class FlowSpan:
    """Lifecycle timeline of one flow.  See module docstring."""

    __slots__ = ("flow", "fid", "protocol", "size_bytes", "created_ps",
                 "start_ps", "first_credit_ps", "first_data_ps", "stop_ps",
                 "finish_ps", "feedback_updates", "_registry")

    def __init__(self, flow, registry):
        self.flow = flow
        self.fid = flow.fid
        self.protocol = type(flow).__name__
        self.size_bytes = flow.size_bytes
        self.created_ps = flow.sim.now
        self.start_ps: Optional[int] = None
        self.first_credit_ps: Optional[int] = None
        self.first_data_ps: Optional[int] = None
        self.stop_ps: Optional[int] = None
        self.finish_ps: Optional[int] = None
        self.feedback_updates = 0
        self._registry = registry

    def mark(self, event: str, t_ps: int) -> None:
        """Record ``event`` at ``t_ps`` once; later marks are ignored."""
        attr = _EVENT_ATTR.get(event)
        if attr is None:
            raise ValueError(f"unknown span event {event!r}")
        if getattr(self, attr) is None:
            setattr(self, attr, t_ps)
            self._registry.log_event(t_ps, event, self.fid)

    def finish(self, flow) -> None:
        """Completion: stamp the span, log it, and feed the FCT histogram."""
        if self.finish_ps is None:
            self.finish_ps = flow.sim.now
            reg = self._registry
            reg.log_event(self.finish_ps, "complete", self.fid)
            fct = flow.fct_ps
            if fct is not None:
                reg.histogram("flow.fct_ps").record(fct)

    def credit_rtt(self, sample_ps: int) -> None:
        """One credit round-trip sample (credit sent -> data echoed back)."""
        self._registry.histogram("expresspass.credit_rtt_ps").record(sample_ps)

    # -- views ---------------------------------------------------------------
    @property
    def time_to_first_credit_ps(self) -> Optional[int]:
        if self.start_ps is None or self.first_credit_ps is None:
            return None
        return self.first_credit_ps - self.start_ps

    @property
    def time_to_first_data_ps(self) -> Optional[int]:
        if self.start_ps is None or self.first_data_ps is None:
            return None
        return self.first_data_ps - self.start_ps

    def as_dict(self) -> dict:
        return {
            "fid": self.fid,
            "protocol": self.protocol,
            "size_bytes": self.size_bytes,
            "created_ps": self.created_ps,
            "start_ps": self.start_ps,
            "first_credit_ps": self.first_credit_ps,
            "first_data_ps": self.first_data_ps,
            "stop_ps": self.stop_ps,
            "finish_ps": self.finish_ps,
            "feedback_updates": self.feedback_updates,
        }

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (f"<FlowSpan #{self.fid} {self.protocol} "
                f"start={self.start_ps} finish={self.finish_ps}>")

"""Live terminal dashboard over a :class:`MetricsRegistry`.

The dashboard hooks the registry's ``on_snapshot`` callback and, throttled by
wall-clock time (simulated time can tick millions of snapshots per second of
real time), repaints a small panel of :mod:`repro.viz` sparklines on the
output stream: queue occupancy per tracked port, per-flow transmit rate
derived from the snapshot series, FCT percentiles from the ``flow.fct_ps``
histogram, and a drops/marks/throttles counter strip.

It is deliberately dumb about terminals — it emits plain text blocks
separated by a header line rather than cursor-addressed repaints, so output
stays useful when piped to a file or a CI log.
"""

from __future__ import annotations

import time
from typing import List, Optional

from repro.sim.units import MS
from repro.viz import sparkline

#: How many trailing samples each sparkline shows.
PANEL_WIDTH = 48


def _fmt_time(t_ps: int) -> str:
    return f"{t_ps / MS:.3f}ms"


class Dashboard:
    """Renders registry snapshots as text panels.  See module docstring."""

    def __init__(self, registry, out, min_interval_s: float = 0.25,
                 ascii_only: bool = False, clock=time.monotonic):
        self.registry = registry
        self.out = out
        self.min_interval_s = min_interval_s
        self.ascii_only = ascii_only
        self.renders = 0
        self._clock = clock
        self._last_render_s: Optional[float] = None
        self._prev_hook = registry.on_snapshot
        registry.on_snapshot = self._on_snapshot

    # -- wiring ---------------------------------------------------------------
    def _on_snapshot(self, registry) -> None:
        if self._prev_hook is not None:
            self._prev_hook(registry)
        now_s = self._clock()
        if (self._last_render_s is not None
                and now_s - self._last_render_s < self.min_interval_s):
            return
        self._last_render_s = now_s
        self.out.write(self.render() + "\n")
        flush = getattr(self.out, "flush", None)
        if flush is not None:
            flush()
        self.renders += 1

    def close(self) -> None:
        """Detach from the registry, restoring any prior snapshot hook."""
        if self.registry.on_snapshot == self._on_snapshot:
            self.registry.on_snapshot = self._prev_hook

    # -- rendering ------------------------------------------------------------
    def render(self) -> str:
        reg = self.registry
        lines: List[str] = [
            f"== repro.obs t={_fmt_time(reg.sim.now)} "
            f"events={reg.sim.events_processed} "
            f"snapshots={reg.snapshots_taken} =="
        ]
        lines.extend(self._queue_panel())
        lines.extend(self._rate_panel())
        lines.extend(self._fct_panel())
        lines.extend(self._counter_panel())
        lines.extend(self._shard_panel())
        return "\n".join(lines)

    def _spark(self, values) -> str:
        return sparkline(values[-PANEL_WIDTH:], lo=0,
                         ascii_only=self.ascii_only)

    def _queue_panel(self) -> List[str]:
        lines = []
        for name, series in sorted(self.registry.series.items()):
            if not name.startswith("queue.") or not series.values:
                continue
            peak = max(series.values)
            lines.append(f"  {name:<28} |{self._spark(series.values)}| "
                         f"now={series.values[-1]} max={peak}")
        return lines

    def _rate_panel(self) -> List[str]:
        """Aggregate transmit rate in Gbit/s from tx-bytes snapshot deltas."""
        series = self.registry.series.get("tx.data.bytes.total")
        if series is None or len(series) < 2:
            return []
        rates = []
        times, values = series.times_ps, series.values
        for i in range(1, len(values)):
            dt_ps = times[i] - times[i - 1]
            if dt_ps <= 0:
                continue
            # bytes/ps * 8 -> bits/ps; * 1e3 -> Gbit/s (1 Gbit/s = 1e-3 bit/ps)
            rates.append((values[i] - values[i - 1]) * 8e3 / dt_ps)
        if not rates:
            return []
        return [f"  {'tx rate (Gbps)':<28} |{self._spark(rates)}| "
                f"now={rates[-1]:.2f} peak={max(rates):.2f}"]

    def _fct_panel(self) -> List[str]:
        hist = self.registry.histograms.get("flow.fct_ps")
        if hist is None or hist.count == 0:
            return []
        return [f"  FCT n={hist.count} p50={_fmt_time(hist.percentile(50))} "
                f"p99={_fmt_time(hist.percentile(99))} "
                f"max={_fmt_time(hist.vmax)}"]

    def _counter_panel(self) -> List[str]:
        drops = marks = 0
        for port in self.registry.ports:
            for q in (port.data_queue, port.credit_queue):
                if q is not None:
                    drops += q.stats.dropped
                    marks += getattr(q.stats, "ecn_marked", 0)
        return [f"  drops={drops} ecn_marks={marks} "
                f"credit_throttled={self.registry.credit_throttled}"]

    def _shard_panel(self) -> List[str]:
        """Per-shard lanes from the ambient cross-layer tracer, if any.

        Sparkline of recent window-grant durations plus the busy/idle
        split per shard — fed by the same ``repro.obs.trace`` shard spans
        the offline ``repro trace summarize`` table aggregates.
        """
        from repro.obs import trace as obs_trace
        tracer = obs_trace.emit_target()
        if tracer is None:
            return []
        lanes = {}
        for rec in tracer.records:
            if rec.get("layer") != "shard" or rec.get("record") != "span":
                continue
            sid = rec.get("args", {}).get("shard")
            if sid is None or rec.get("name") != "window":
                continue
            lanes.setdefault(sid, []).append(rec)
        lines = []
        for sid in sorted(lanes):
            spans = lanes[sid]
            durs = [r["t1"] - r["t0"] for r in spans]
            busy = sum(durs)
            idle = sum(float(r["args"].get("idle_us", 0.0)) for r in spans)
            active = busy + idle
            idle_pct = 100.0 * idle / active if active else 0.0
            lines.append(f"  shard{sid:<3} windows={len(spans):<6} "
                         f"|{self._spark(durs)}| "
                         f"busy={busy / 1e3:.1f}ms idle={idle_pct:.0f}%")
        return lines
